"""Dataflow analyses over the linter's control-flow graph.

A generic worklist fixpoint solver plus the concrete analyses the
L009-L013 rule family is built on:

* :class:`ReachingDefinitions` -- forward may-analysis mapping each
  register to the set of definition sites (instruction addresses, plus
  the :data:`ENTRY_DEF` pseudo-site for values live at function entry)
  that may supply its value;
* :class:`Liveness` -- backward may-analysis of the registers whose
  values may still be read;
* :class:`DefiniteAssignment` -- forward must-analysis of the registers
  assigned on *every* path from the entry (uninitialized-read checks);
* :class:`ConditionalConstants` -- simple constant propagation with
  infeasible-edge pruning (a lightweight sparse-conditional variant):
  folds integer ALU results through :func:`repro.isa.semantics.evaluate`
  so the lattice agrees with the core's functional semantics, and marks
  blocks only reachable through statically-false branches;
* :func:`loop_invariant_addrs` -- the classic LICM closure over
  reaching definitions, used to prove that a flush-inducing CSR
  instruction recomputes the same value every loop iteration (the
  semantic generalisation of the paper's Section 6 Imagick rule).

:class:`DominatorTree` and :class:`LoopNest` derive the immediate
dominator relation and the natural-loop nesting from the CFG's
dominator sets; rules use them to phrase "hoist to the preheader"
fix hints and to pick innermost loops.

All analyses are per-function: the CFG's ``successors``/``predecessors``
edges are intra-function by construction, and calls are modelled
conservatively (a call may read and define every register).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (Any, Dict, FrozenSet, Iterable, Iterator, List,
                    Optional, Set, Tuple)

from ..isa.instruction import Instruction, Register
from ..isa.opcodes import Kind, Op
from ..isa.semantics import evaluate
from .cfg import BasicBlock, ControlFlowGraph, Loop

#: Pseudo definition site: "defined before the function was entered".
ENTRY_DEF = -1

_ENTRY_SITES: FrozenSet[int] = frozenset({ENTRY_DEF})

#: Every register a function boundary may carry a value in.  ``x0`` is
#: excluded throughout: it is hard-wired to zero, so it is always
#: defined, always constant, and writes to it are discarded.
ALL_REGS: FrozenSet[int] = frozenset(range(1, Register.TOTAL))

FORWARD = "forward"
BACKWARD = "backward"

#: Opcodes the constant folder may evaluate: the integer ALU subset
#: whose results depend only on register operands and the immediate
#: (loads, CSR reads and FP ops are never folded).
_FOLDABLE: FrozenSet[Op] = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SLT,
    Op.MUL, Op.DIV, Op.REM,
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SLTI,
    Op.LUI,
})

#: Kinds whose result is a pure function of register operands, i.e.
#: candidates for loop-invariance.  Memory (value may change between
#: iterations) and control flow are excluded; CSR accesses are included
#: deliberately -- the Section 6 anti-pattern is exactly a CSR whose
#: *operands* are invariant, so the access can be hoisted or dropped.
_INVARIANT_KINDS = frozenset({
    Kind.ALU, Kind.MUL, Kind.DIV, Kind.FP_ALU, Kind.FP_DIV, Kind.CSR,
    Kind.NOP,
})


# -- register def/use model -------------------------------------------------

def defined_registers(inst: Instruction) -> Tuple[int, ...]:
    """Registers *inst* writes (writes to ``x0`` are discarded)."""
    if inst.rd is None or inst.rd == 0:
        return ()
    return (inst.rd,)


def used_registers(inst: Instruction) -> Tuple[int, ...]:
    """Registers *inst* reads (``x0`` is always defined, so omitted)."""
    return tuple(reg for reg in inst.sources if reg != 0)


def is_call_like(inst: Instruction) -> bool:
    """Calls and indirect calls: may read and define every register."""
    if inst.kind is Kind.CALL and not inst.is_jump:
        return True
    return inst.kind is Kind.RETURN and inst.can_fall_through


# -- the generic solver -----------------------------------------------------

class BlockState:
    """Fixpoint values at one block's entry and exit."""

    __slots__ = ("entry", "exit")

    def __init__(self, entry: Any, exit: Any):
        self.entry = entry
        self.exit = exit

    def __repr__(self) -> str:
        return f"<state in={self.entry!r} out={self.exit!r}>"


class DataflowAnalysis:
    """One dataflow problem: a lattice plus per-instruction transfer.

    Subclasses set :attr:`direction` and implement :meth:`boundary`
    (the value at the function boundary), :meth:`init` (the solver's
    starting interior value -- the lattice top for must-problems, the
    bottom for may-problems), :meth:`meet` and
    :meth:`transfer_instruction`.  Values must support ``==`` and must
    never be mutated in place; the solver compares them to detect the
    fixpoint.
    """

    direction: str = FORWARD

    def boundary(self) -> Any:
        raise NotImplementedError

    def init(self) -> Any:
        raise NotImplementedError

    def meet(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def exit_value(self, block: BasicBlock) -> Any:
        """Boundary value where control leaves the function after
        *block* (backward analyses only).  Defaults to the uniform
        :meth:`boundary`; override to refine per exit kind."""
        return self.boundary()

    def transfer_instruction(self, inst: Instruction, value: Any) -> Any:
        raise NotImplementedError

    def transfer(self, block: BasicBlock, value: Any) -> Any:
        """Fold the per-instruction transfer over a whole block."""
        instructions: Iterable[Instruction] = block.instructions
        if self.direction == BACKWARD:
            instructions = reversed(block.instructions)
        for inst in instructions:
            value = self.transfer_instruction(inst, value)
        return value


def _function_blocks(cfg: ControlFlowGraph,
                     function: str) -> Tuple[Optional[int], Set[int]]:
    """The function's root block and the blocks reachable from it."""
    indices = cfg.functions.get(function, [])
    if not indices:
        return None, set()
    root = indices[0]
    local: Set[int] = set()
    work = [root]
    while work:
        index = work.pop()
        if index in local:
            continue
        local.add(index)
        work.extend(cfg.blocks[index].successors)
    return root, local


def _leaves_function(block: BasicBlock, succs: List[int]) -> bool:
    """Control may leave the function after *block* (boundary applies)."""
    if not succs or block.falls_off or block.call_targets:
        return True
    return block.terminator.kind in (Kind.RETURN, Kind.HALT, Kind.SRET)


def solve(analysis: DataflowAnalysis, cfg: ControlFlowGraph,
          function: str) -> Dict[int, BlockState]:
    """Worklist fixpoint of *analysis* over one function's blocks.

    Returns ``{block index: BlockState}`` for every block reachable
    from the function's first block; ``entry``/``exit`` are always the
    values at the block's entry/exit regardless of direction.
    Terminates for any monotone transfer over a finite lattice: block
    values only ever move down the lattice, and a block is only
    re-queued when an input value changed.
    """
    root, local = _function_blocks(cfg, function)
    if root is None:
        return {}
    states = {index: BlockState(analysis.init(), analysis.init())
              for index in local}
    forward = analysis.direction == FORWARD
    order = sorted(local)
    work = deque(order)
    queued = set(order)
    while work:
        index = work.popleft()
        queued.discard(index)
        block = cfg.blocks[index]
        state = states[index]
        if forward:
            value = analysis.init()
            for pred in block.predecessors:
                if pred in local:
                    value = analysis.meet(value, states[pred].exit)
            if index == root:
                value = analysis.meet(value, analysis.boundary())
            out = analysis.transfer(block, value)
            changed = out != state.exit
            state.entry, state.exit = value, out
            if changed:
                for succ in block.successors:
                    if succ in local and succ not in queued:
                        queued.add(succ)
                        work.append(succ)
        else:
            succs = [s for s in block.successors if s in local]
            value = analysis.init()
            for succ in succs:
                value = analysis.meet(value, states[succ].entry)
            if _leaves_function(block, succs):
                value = analysis.meet(value, analysis.exit_value(block))
            entry = analysis.transfer(block, value)
            changed = entry != state.entry
            state.entry, state.exit = entry, value
            if changed:
                for pred in block.predecessors:
                    if pred in local and pred not in queued:
                        queued.add(pred)
                        work.append(pred)
    return states


# -- reaching definitions ---------------------------------------------------

class ReachingDefinitions(DataflowAnalysis):
    """Which definition sites may supply each register's value.

    Values are ``{register: frozenset(addresses)}``; the pseudo-address
    :data:`ENTRY_DEF` stands for "whatever the function was entered
    with".  Calls conservatively define every register at the call's
    address.
    """

    direction = FORWARD

    def __init__(self, cfg: ControlFlowGraph, function: str):
        self.cfg = cfg
        self.function = function
        self.states = solve(self, cfg, function)

    def boundary(self) -> Dict[int, FrozenSet[int]]:
        return {reg: _ENTRY_SITES for reg in ALL_REGS}

    def init(self) -> Dict[int, FrozenSet[int]]:
        return {}

    def meet(self, a: Dict[int, FrozenSet[int]],
             b: Dict[int, FrozenSet[int]]) -> Dict[int, FrozenSet[int]]:
        if not a:
            return b
        if not b:
            return a
        out = dict(a)
        for reg, sites in b.items():
            current = out.get(reg)
            out[reg] = sites if current is None else current | sites
        return out

    def transfer_instruction(self, inst: Instruction,
                             value: Dict[int, FrozenSet[int]]
                             ) -> Dict[int, FrozenSet[int]]:
        if is_call_like(inst):
            site = frozenset({inst.addr})
            return {reg: site for reg in ALL_REGS}
        defs = defined_registers(inst)
        if not defs:
            return value
        value = dict(value)
        for reg in defs:
            value[reg] = frozenset({inst.addr})
        return value

    def at(self, block: BasicBlock
           ) -> Iterator[Tuple[Instruction, Dict[int, FrozenSet[int]]]]:
        """Yield ``(inst, env-before-inst)`` in program order."""
        state = self.states.get(block.index)
        env: Dict[int, FrozenSet[int]] = {} if state is None \
            else state.entry
        for inst in block.instructions:
            yield inst, env
            env = self.transfer_instruction(inst, env)


# -- liveness ---------------------------------------------------------------

class Liveness(DataflowAnalysis):
    """Registers whose values may still be read (backward may).

    Function boundaries are conservative: everything is live at
    returns, fall-offs and tail jumps (results flow to the caller),
    and calls read every register (argument passing).  The one exact
    boundary is ``halt`` -- the machine stops, so nothing is live.
    """

    direction = BACKWARD

    def __init__(self, cfg: ControlFlowGraph, function: str):
        self.cfg = cfg
        self.function = function
        self.states = solve(self, cfg, function)

    def boundary(self) -> FrozenSet[int]:
        return ALL_REGS

    def exit_value(self, block: BasicBlock) -> FrozenSet[int]:
        if not block.falls_off and not block.call_targets \
                and block.terminator.kind is Kind.HALT:
            return frozenset()
        return ALL_REGS

    def init(self) -> FrozenSet[int]:
        return frozenset()

    def meet(self, a: FrozenSet[int],
             b: FrozenSet[int]) -> FrozenSet[int]:
        return a | b

    def transfer_instruction(self, inst: Instruction,
                             value: FrozenSet[int]) -> FrozenSet[int]:
        if is_call_like(inst):
            return ALL_REGS
        defs = defined_registers(inst)
        if defs:
            value = value - frozenset(defs)
        uses = used_registers(inst)
        if uses:
            value = value | frozenset(uses)
        return value

    def live_after(self, block: BasicBlock) -> List[FrozenSet[int]]:
        """Live-after set of each instruction, in program order."""
        state = self.states.get(block.index)
        value: FrozenSet[int] = frozenset() if state is None \
            else state.exit
        out: List[FrozenSet[int]] = []
        for inst in reversed(block.instructions):
            out.append(value)
            value = self.transfer_instruction(inst, value)
        out.reverse()
        return out


# -- definite assignment ----------------------------------------------------

class DefiniteAssignment(DataflowAnalysis):
    """Registers assigned on every path from the function entry."""

    direction = FORWARD

    def __init__(self, cfg: ControlFlowGraph, function: str):
        self.cfg = cfg
        self.function = function
        self.states = solve(self, cfg, function)

    def boundary(self) -> FrozenSet[int]:
        return frozenset()

    def init(self) -> FrozenSet[int]:
        return ALL_REGS  # lattice top for the must-intersection

    def meet(self, a: FrozenSet[int],
             b: FrozenSet[int]) -> FrozenSet[int]:
        return a & b

    def transfer_instruction(self, inst: Instruction,
                             value: FrozenSet[int]) -> FrozenSet[int]:
        if is_call_like(inst):
            return ALL_REGS
        defs = defined_registers(inst)
        if defs:
            value = value | frozenset(defs)
        return value

    def at(self, block: BasicBlock
           ) -> Iterator[Tuple[Instruction, FrozenSet[int]]]:
        """Yield ``(inst, assigned-before-inst)`` in program order."""
        state = self.states.get(block.index)
        value: FrozenSet[int] = ALL_REGS if state is None \
            else state.entry
        for inst in block.instructions:
            yield inst, value
            value = self.transfer_instruction(inst, value)


# -- constant propagation with infeasible-edge pruning ----------------------

#: A constant environment: register -> known integer value.  A missing
#: register is *not a constant*; ``x0`` is implicitly always zero.
ConstEnv = Dict[int, int]


def _const_operands(inst: Instruction,
                    env: ConstEnv) -> Optional[Tuple[int, ...]]:
    values = []
    for reg in inst.sources:
        value = 0 if reg == 0 else env.get(reg)
        if value is None:
            return None
        values.append(value)
    return tuple(values)


def fold_constant(inst: Instruction, env: ConstEnv) -> Optional[int]:
    """Fold *inst* to an integer constant under *env*, if possible.

    Delegates to :func:`repro.isa.semantics.evaluate` so folded values
    agree with what the core would compute (64-bit wrapping, RISC-V
    division-by-zero results, shift masking).
    """
    if inst.op not in _FOLDABLE:
        return None
    operands = _const_operands(inst, env)
    if operands is None:
        return None
    result = evaluate(inst, operands).value
    return result if isinstance(result, int) else None


def branch_verdict(inst: Instruction,
                   env: ConstEnv) -> Optional[bool]:
    """Statically-known outcome of a conditional branch, if any."""
    if not inst.is_branch:
        return None
    operands = _const_operands(inst, env)
    if operands is None:
        return None
    return evaluate(inst, operands).taken


def _const_transfer(inst: Instruction, env: ConstEnv) -> ConstEnv:
    if is_call_like(inst):
        return {}
    defs = defined_registers(inst)
    if not defs:
        return env
    value = fold_constant(inst, env)
    env = dict(env)
    for reg in defs:
        if value is None:
            env.pop(reg, None)
        else:
            env[reg] = value
    return env


def _const_meet(a: ConstEnv, b: ConstEnv) -> ConstEnv:
    return {reg: value for reg, value in a.items()
            if b.get(reg) == value}


class ConditionalConstants:
    """Constant propagation that prunes statically-false branch edges.

    A lightweight sparse-conditional solver: block environments start
    unreached and only blocks reachable through *feasible* edges are
    processed, so a branch whose condition folds to a constant never
    propagates into its dead arm.  Exposes:

    * ``executable`` -- blocks reachable along feasible edges;
    * ``structural`` -- blocks reachable from the function root
      ignoring conditions (the set L003 considers);
    * ``entry_env(index)`` -- the constant environment at block entry;
    * ``verdicts`` -- ``{block index: True (always taken) | False
      (always falls through)}`` for constant-condition branches.
    """

    def __init__(self, cfg: ControlFlowGraph, function: str):
        self.cfg = cfg
        self.function = function
        root, local = _function_blocks(cfg, function)
        self.structural = local
        self._env_in: Dict[int, ConstEnv] = {}
        self.verdicts: Dict[int, bool] = {}
        if root is None:
            self.executable: Set[int] = set()
            return
        self._env_in[root] = {}
        work = deque([root])
        queued = {root}
        while work:
            index = work.popleft()
            queued.discard(index)
            block = cfg.blocks[index]
            env = self._env_in[index]
            for inst in block.instructions[:-1]:
                env = _const_transfer(inst, env)
            term = block.terminator
            verdict = branch_verdict(term, env)
            env = _const_transfer(term, env)
            feasible = block.successors
            if verdict is None:
                self.verdicts.pop(index, None)
            else:
                self.verdicts[index] = verdict
                target = term.imm if verdict else term.next_addr
                keep = cfg.block_index_of(target)
                feasible = [s for s in block.successors if s == keep]
            for succ in feasible:
                old = self._env_in.get(succ)
                new = env if old is None else _const_meet(old, env)
                if old is None or new != old:
                    self._env_in[succ] = new
                    if succ not in queued:
                        queued.add(succ)
                        work.append(succ)
        self.executable = set(self._env_in)

    def entry_env(self, index: int) -> Optional[ConstEnv]:
        """Constants at block entry; ``None`` if never executable."""
        return self._env_in.get(index)


# -- dominator tree and loop nesting ----------------------------------------

class DominatorTree:
    """Immediate dominators derived from the CFG's dominator sets.

    The dominators of a block form a chain under set inclusion, so the
    immediate dominator is simply the strict dominator with the largest
    dominator set of its own.
    """

    def __init__(self, cfg: ControlFlowGraph, function: str):
        self._dom = cfg.dominators(function)
        indices = cfg.functions.get(function, [])
        self.root: Optional[int] = indices[0] if indices else None
        self.idom: Dict[int, Optional[int]] = {}
        for index, doms in self._dom.items():
            strict = [d for d in doms if d != index]
            if strict:
                sets = self._dom
                self.idom[index] = max(
                    strict, key=lambda d: len(sets[d]))
            else:
                self.idom[index] = None

    def dominates(self, a: int, b: int) -> bool:
        return a in self._dom.get(b, ())

    def dominators_of(self, index: int) -> Set[int]:
        return set(self._dom.get(index, ()))


class LoopNest:
    """Natural-loop nesting for one function.

    A loop's parent is the smallest natural loop whose body strictly
    contains it; nesting depth counts enclosing loops (an outermost
    loop has depth 1).
    """

    def __init__(self, cfg: ControlFlowGraph, function: str):
        self.loops: List[Loop] = [loop for loop in cfg.loops
                                  if loop.function == function]
        self.parent: List[Optional[int]] = []
        for i, loop in enumerate(self.loops):
            enclosing = [j for j, other in enumerate(self.loops)
                         if j != i and loop.body < other.body]
            if enclosing:
                loops = self.loops
                self.parent.append(
                    min(enclosing, key=lambda j: len(loops[j].body)))
            else:
                self.parent.append(None)

    def depth(self, i: int) -> int:
        """Nesting depth of loop *i* (1 = outermost)."""
        depth = 1
        parent = self.parent[i]
        while parent is not None:
            depth += 1
            parent = self.parent[parent]
        return depth

    def innermost(self, block_index: int) -> Optional[Loop]:
        """The smallest loop whose body contains *block_index*."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if block_index in loop.body:
                if best is None or len(loop.body) < len(best.body):
                    best = loop
        return best


# -- loop-invariant detection -----------------------------------------------

def _invariant_candidate(inst: Instruction) -> bool:
    return inst.kind in _INVARIANT_KINDS


def loop_invariant_addrs(cfg: ControlFlowGraph,
                         reaching: ReachingDefinitions,
                         region: Iterable[int], *,
                         entry_is_variant: bool = False) -> Set[int]:
    """Addresses of region instructions whose operands cannot change
    between executions of the region.

    *region* is a set of block indices -- a natural loop's body, or a
    whole callee when the "loop" is being called repeatedly (the
    Imagick shape; pass ``entry_is_variant=True`` there, because the
    values a callee is entered with differ per call).  The closure is
    the classic LICM one: an instruction is invariant iff every operand
    is supplied either only by definitions outside the region, or by
    exactly one region definition that is itself invariant.
    """
    region_set = set(region)
    region_addrs = {inst.addr for index in region_set
                    for inst in cfg.blocks[index].instructions}
    invariant: Set[int] = set()

    def use_invariant(reg: int, env: Dict[int, FrozenSet[int]]) -> bool:
        sites = env.get(reg)
        if not sites:
            return False  # no reaching-def info: stay conservative
        if entry_is_variant and ENTRY_DEF in sites:
            return False
        inside = sites & frozenset(region_addrs)
        if not inside:
            return True
        return len(sites) == 1 and next(iter(inside)) in invariant

    changed = True
    while changed:
        changed = False
        for index in sorted(region_set):
            block = cfg.blocks[index]
            for inst, env in reaching.at(block):
                if inst.addr in invariant:
                    continue
                if not _invariant_candidate(inst):
                    continue
                if all(use_invariant(reg, env)
                       for reg in used_registers(inst)):
                    invariant.add(inst.addr)
                    changed = True
    return invariant


# -- preheader insertion points ---------------------------------------------

@dataclass(frozen=True)
class PreheaderSite:
    """A proven-safe insertion point for code hoisted out of a loop.

    Hoisted instructions are placed textually *before* the header at
    ``header_addr``: back edges and other in-loop references keep
    targeting the header, while every entry from outside the loop runs
    through the inserted code first.  ``body_addrs`` (the addresses of
    the loop body's instructions) is exactly the set whose references
    must keep the old target during the rewrite.
    """

    function: str
    header_addr: int
    body_addrs: FrozenSet[int]


def preheader_site(cfg: ControlFlowGraph,
                   loop: Loop) -> Optional[PreheaderSite]:
    """A :class:`PreheaderSite` for *loop*, or ``None`` if unsafe.

    The one unsafe shape: a loop-body block that physically precedes
    the header and can fall through into it.  Inserting a preheader
    there would put the hoisted code on the back-edge path, executing
    it every iteration.
    """
    header = cfg.blocks[loop.header]
    for index in loop.body:
        block = cfg.blocks[index]
        if block.end == header.start and block.terminator.can_fall_through:
            return None
    body_addrs = frozenset(inst.addr for index in loop.body
                           for inst in cfg.blocks[index].instructions)
    return PreheaderSite(loop.function, header.start, body_addrs)
