"""Shared lint infrastructure: the per-program context and rule base.

Lives in its own module (rather than ``rules.py``) so the abstract-
interpretation rule family in :mod:`repro.lint.absint` can subclass
:class:`LintRule` without a circular import -- ``rules.py`` imports the
absint rules to register them, and the absint rules import this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterator, Optional,
                    Set, Tuple, Union)

from ..isa.program import Program
from .cfg import ControlFlowGraph
from .dataflow import (ConditionalConstants, DefiniteAssignment, Liveness,
                       LoopNest, ReachingDefinitions, loop_invariant_addrs)
from .diagnostics import Diagnostic, FixHint, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .absint.engine import AbsintResult


@dataclass
class LintContext:
    """Everything a rule may consult, computed once per program.

    The dataflow analyses are per-function and lazy: the first rule to
    ask for one pays for the fixpoint, later rules share the cache.
    """

    program: Program
    cfg: ControlFlowGraph
    #: Extra mapped memory the program may legally touch beyond its
    #: data image: half-open ``(start, end)`` byte ranges.  Harness
    #: premapped regions land here so L014 does not flag them.
    regions: Tuple[Tuple[int, int], ...] = ()
    _reaching: Dict[str, ReachingDefinitions] = field(
        default_factory=dict, init=False, repr=False)
    _liveness: Dict[str, Liveness] = field(
        default_factory=dict, init=False, repr=False)
    _assignment: Dict[str, DefiniteAssignment] = field(
        default_factory=dict, init=False, repr=False)
    _constants: Dict[str, ConditionalConstants] = field(
        default_factory=dict, init=False, repr=False)
    _loop_nests: Dict[str, LoopNest] = field(
        default_factory=dict, init=False, repr=False)
    _invariants: Dict[Tuple[str, FrozenSet[int], bool], Set[int]] = field(
        default_factory=dict, init=False, repr=False)
    _absint: Optional["AbsintResult"] = field(
        default=None, init=False, repr=False)

    def function_name(self, addr: int) -> Optional[str]:
        func = self.program.function_of(addr)
        return func.name if func is not None else None

    def reaching(self, function: str) -> ReachingDefinitions:
        if function not in self._reaching:
            self._reaching[function] = ReachingDefinitions(
                self.cfg, function)
        return self._reaching[function]

    def liveness(self, function: str) -> Liveness:
        if function not in self._liveness:
            self._liveness[function] = Liveness(self.cfg, function)
        return self._liveness[function]

    def assignment(self, function: str) -> DefiniteAssignment:
        if function not in self._assignment:
            self._assignment[function] = DefiniteAssignment(
                self.cfg, function)
        return self._assignment[function]

    def constants(self, function: str) -> ConditionalConstants:
        if function not in self._constants:
            self._constants[function] = ConditionalConstants(
                self.cfg, function)
        return self._constants[function]

    def loop_nest(self, function: str) -> LoopNest:
        if function not in self._loop_nests:
            self._loop_nests[function] = LoopNest(self.cfg, function)
        return self._loop_nests[function]

    def invariants(self, function: str, region: FrozenSet[int],
                   entry_is_variant: bool) -> Set[int]:
        key = (function, region, entry_is_variant)
        if key not in self._invariants:
            self._invariants[key] = loop_invariant_addrs(
                self.cfg, self.reaching(function), region,
                entry_is_variant=entry_is_variant)
        return self._invariants[key]

    def absint(self) -> "AbsintResult":
        """The whole-program abstract interpretation (lazy, shared by
        every absint rule and the static cost model)."""
        if self._absint is None:
            from .absint.engine import AbstractInterpreter
            self._absint = AbstractInterpreter(
                self.program, self.cfg, self.regions).run()
        return self._absint


class LintRule:
    """Base class: subclasses set the metadata and implement check()."""

    rule_id: str = "L000"
    name: str = "rule"
    severity: Severity = Severity.WARNING
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, message: str, *, addr: Optional[int] = None,
             function: Optional[str] = None,
             fix_hint: Optional[Union[str, FixHint]] = None,
             severity: Optional[Severity] = None) -> Diagnostic:
        fix: Optional[FixHint] = None
        if isinstance(fix_hint, FixHint):
            fix = fix_hint
        elif fix_hint is not None:
            # Plain-text hints become advice-only structured hints, so
            # the JSON payload always carries the same schema.
            fix = FixHint(action="manual", text=fix_hint)
        return Diagnostic(self.rule_id, severity or self.severity, message,
                          addr=addr, function=function,
                          fix_hint=fix.text if fix is not None else None,
                          fix=fix)
