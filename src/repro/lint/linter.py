"""The linter driver: run rules over a program, collect a report."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa.program import Program
from .cfg import build_cfg
from .diagnostics import Diagnostic, Severity
from .rules import (DATAFLOW_RULE_IDS, DEFAULT_RULES, LintContext,
                    LintRule, RULES_BY_ID, SELF_CHECK_RULE_IDS,
                    STRUCTURAL_RULE_IDS)


@dataclass
class LintReport:
    """All diagnostics the linter produced for one program."""

    program_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Diagnostics dropped by ``# lint: ignore[...]`` pragmas.
    suppressed: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics (warnings are allowed)."""
        return not self.errors

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def render(self, verbose: bool = True) -> str:
        suffix = (f", {self.suppressed} suppressed"
                  if self.suppressed else "")
        lines = [f"{self.program_name}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s){suffix}"]
        if verbose:
            lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {"program": self.program_name,
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": self.suppressed,
                "diagnostics": [d.to_dict() for d in self.diagnostics]}


class Linter:
    """Runs a configurable rule set over programs."""

    def __init__(self, rules: Optional[Sequence[LintRule]] = None,
                 dataflow: bool = True):
        selected = list(DEFAULT_RULES if rules is None else rules)
        if not dataflow:
            selected = [rule for rule in selected
                        if rule.rule_id not in DATAFLOW_RULE_IDS]
        self.rules: List[LintRule] = selected

    @classmethod
    def structural(cls) -> "Linter":
        """Only the structural (error-severity) self-check rules."""
        return cls([RULES_BY_ID[rid] for rid in STRUCTURAL_RULE_IDS])

    @classmethod
    def self_check(cls) -> "Linter":
        """The workload-generator gate: structural errors plus
        const-proven unreachable code (L011)."""
        return cls([RULES_BY_ID[rid] for rid in SELF_CHECK_RULE_IDS])

    def run(self, program: Program, path: Optional[str] = None,
            honor_ignores: bool = True,
            regions: Iterable[Tuple[int, int]] = ()) -> LintReport:
        """Lint *program*; *path* attaches source file/line locations
        (lines come from ``program.lines``, the assembler's map).
        *regions* are extra mapped ``(start, end)`` byte ranges (e.g.
        harness-premapped buffers) the memory-safety rules must treat
        as legal.

        With *honor_ignores* (the default), diagnostics at addresses
        carrying a ``# lint: ignore[...]`` pragma are dropped and
        counted in :attr:`LintReport.suppressed`.
        """
        ctx = LintContext(program, build_cfg(program),
                          regions=tuple(regions))
        report = LintReport(program.name)
        for rule in self.rules:
            report.diagnostics.extend(rule.check(ctx))
        # A diagnostic reached through several interprocedural contexts
        # (or several overlapping loops) is one finding, not many.
        seen = set()
        unique = []
        for d in report.diagnostics:
            key = (d.rule, d.addr, d.message)
            if key in seen:
                continue
            seen.add(key)
            unique.append(d)
        report.diagnostics = unique
        if honor_ignores and program.ignores:
            kept = []
            for d in report.diagnostics:
                rules = (program.ignores.get(d.addr)
                         if d.addr is not None else None)
                if rules is not None and ("*" in rules
                                          or d.rule in rules):
                    report.suppressed += 1
                else:
                    kept.append(d)
            report.diagnostics = kept
        if path is not None:
            report.diagnostics = [
                dataclasses.replace(
                    d, path=path,
                    line=(program.lines.get(d.addr)
                          if d.addr is not None else None))
                for d in report.diagnostics]
        # Stable order: errors before warnings before infos, and within
        # each severity band findings read in program (address) order in
        # both the text and ``--format json`` outputs, independent of
        # which rule or calling context produced them first.
        report.diagnostics.sort(
            key=lambda d: (-d.severity.rank, d.addr is None, d.addr or 0,
                           d.rule, d.message))
        return report


def lint_program(program: Program,
                 rules: Optional[Sequence[LintRule]] = None,
                 dataflow: bool = True,
                 path: Optional[str] = None,
                 honor_ignores: bool = True,
                 regions: Iterable[Tuple[int, int]] = ()) -> LintReport:
    """Lint *program* with the default (or a custom) rule set."""
    return Linter(rules, dataflow=dataflow).run(
        program, path=path, honor_ignores=honor_ignores,
        regions=regions)
