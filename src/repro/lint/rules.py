"""Lint rules over the control-flow graph.

Two severity classes, checked against different expectations:

* **errors** are structural defects a generated or hand-written program
  must never have (unreachable code, falling off the text segment,
  overlapping function symbols) -- the workload generators self-check
  against these;
* **warnings** are performance anti-patterns the paper's case study is
  built on (flush-inducing CSR accesses in hot code, Section 6) plus
  code-quality smells (discarded writes to ``x0``, link-register
  mismatches).

Each rule has a stable id (``L001``..) used by tests, CI greps and the
docs table in ``docs/lint.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..isa.instruction import Register
from ..isa.opcodes import Kind
from ..isa.program import FunctionSymbol, Program
from .cfg import ControlFlowGraph
from .diagnostics import Diagnostic, Severity


@dataclass
class LintContext:
    """Everything a rule may consult, computed once per program."""

    program: Program
    cfg: ControlFlowGraph

    def function_name(self, addr: int) -> Optional[str]:
        func = self.program.function_of(addr)
        return func.name if func is not None else None


class LintRule:
    """Base class: subclasses set the metadata and implement check()."""

    rule_id: str = "L000"
    name: str = "rule"
    severity: Severity = Severity.WARNING
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, message: str, *, addr: Optional[int] = None,
             function: Optional[str] = None,
             fix_hint: Optional[str] = None,
             severity: Optional[Severity] = None) -> Diagnostic:
        return Diagnostic(self.rule_id, severity or self.severity, message,
                          addr=addr, function=function, fix_hint=fix_hint)


class FlushInLoopRule(LintRule):
    """The Imagick anti-pattern (paper Section 6).

    A flush-on-commit instruction (``frflags``/``fsflags``/``csrrw``/
    ``ecall``) inside a natural loop -- or in a function transitively
    called from one -- flushes the whole pipeline every iteration.  The
    paper's fix (replace the CSR pair with ``nop``) bought 1.93x on
    Imagick.
    """

    rule_id = "L001"
    name = "flush-in-loop"
    severity = Severity.WARNING
    description = ("pipeline-flushing instruction executed repeatedly "
                   "(inside a loop or a function called from one)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if block.index not in ctx.cfg.reachable:
                continue
            for inst in block.instructions:
                if not inst.flushes_on_commit or inst.kind is Kind.SRET:
                    continue
                context = ctx.cfg.hot_context(inst.addr)
                if context is None:
                    continue
                how, header = context
                where = (f"inside the loop at {header:#x}"
                         if how == "loop"
                         else f"in a function called from the loop at "
                              f"{header:#x}")
                yield self.diag(
                    f"{inst.op.value} flushes the pipeline on commit "
                    f"{where}",
                    addr=inst.addr, function=block.function,
                    fix_hint=("replace with `nop` if the FP-status "
                              "access is not required (paper Section 6: "
                              "1.93x on Imagick)"))


class SerializeInLoopRule(LintRule):
    """Serializing instructions (fence/atomics) in hot code drain the ROB."""

    rule_id = "L002"
    name = "serialize-in-loop"
    severity = Severity.WARNING
    description = ("serializing instruction executed repeatedly; each one "
                   "drains the ROB before dispatch and blocks until commit")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if block.index not in ctx.cfg.reachable:
                continue
            for inst in block.instructions:
                if not inst.is_serializing:
                    continue
                context = ctx.cfg.hot_context(inst.addr)
                if context is None:
                    continue
                how, header = context
                where = ("inside" if how == "loop" else "reached from")
                yield self.diag(
                    f"{inst.op.value} serializes the pipeline, "
                    f"{where} the loop at {header:#x}",
                    addr=inst.addr, function=block.function,
                    fix_hint="hoist it out of the loop if semantics allow")


class UnreachableBlockRule(LintRule):
    """Basic blocks no path from the entry point can execute."""

    rule_id = "L003"
    name = "unreachable-block"
    severity = Severity.ERROR
    description = "basic block unreachable from the program entry point"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if block.index in ctx.cfg.reachable:
                continue
            yield self.diag(
                f"basic block {block.start:#x}..{block.end:#x} "
                f"({len(block.instructions)} instructions) is unreachable "
                f"from the entry point",
                addr=block.start, function=block.function,
                fix_hint="delete the dead code or add a path to it")


class FallThroughOffTextRule(LintRule):
    """Execution can run past the last instruction of the text segment."""

    rule_id = "L004"
    name = "fall-through-off-text"
    severity = Severity.ERROR
    description = ("a reachable path falls through the end of the text "
                   "segment into unmapped memory")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if not block.falls_off or block.index not in ctx.cfg.reachable:
                continue
            if block.end in ctx.program:
                continue  # falls into another function: L008's business
            yield self.diag(
                f"{block.terminator.op.value} at {block.terminator.addr:#x} "
                f"can fall through past the end of the text segment "
                f"({ctx.program.text_hi:#x})",
                addr=block.terminator.addr, function=block.function,
                fix_hint="end the path with halt, a jump or a return")


class ZeroRegisterWriteRule(LintRule):
    """Non-control writes to the hard-wired zero register are dead."""

    rule_id = "L005"
    name = "zero-register-write"
    severity = Severity.WARNING
    description = ("instruction writes x0; the result is silently "
                   "discarded (x0 is hard-wired to zero)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            for inst in block.instructions:
                if inst.rd != 0 or inst.rd is None:
                    continue
                # jalr x0 (return) and jal x0 (jump) discard the link on
                # purpose; nop is the canonical x0 write.
                if inst.is_control or inst.kind is Kind.NOP:
                    continue
                yield self.diag(
                    f"{inst.op.value} writes {Register.name(0)}; the "
                    f"result is discarded",
                    addr=inst.addr, function=block.function,
                    fix_hint="drop the instruction or pick a real "
                             "destination register")


class FunctionOverlapRule(LintRule):
    """Function symbol ranges that overlap each other.

    Overlaps make profile attribution ambiguous and are how
    self-modifying or mis-linked images show up in the symbol table.
    """

    rule_id = "L006"
    name = "function-overlap"
    severity = Severity.ERROR
    description = "two function symbols cover overlapping address ranges"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        funcs: List[FunctionSymbol] = ctx.program.functions  # sorted by lo
        for prev, cur in zip(funcs, funcs[1:]):
            if cur.lo < prev.hi:
                yield self.diag(
                    f"function {cur.name!r} [{cur.lo:#x}, {cur.hi:#x}) "
                    f"overlaps {prev.name!r} [{prev.lo:#x}, {prev.hi:#x})",
                    addr=cur.lo, function=cur.name,
                    fix_hint="fix the symbol ranges so every address maps "
                             "to exactly one function")


class CallReturnMismatchRule(LintRule):
    """Calls that cannot return to their call site.

    Two shapes: a direct call into the *middle* of a function (the
    callee's entry is bypassed), and a callee whose returns use a
    different link register than the one the call wrote -- its ``jalr``
    will jump through a stale register.
    """

    rule_id = "L007"
    name = "call-return-mismatch"
    severity = Severity.WARNING
    description = ("call target is not a function entry, or the callee "
                   "returns through a different link register")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        returns = self._returns_by_function(ctx)
        for block in ctx.cfg.blocks:
            if block.index not in ctx.cfg.reachable:
                continue
            term = block.terminator
            if term.kind is not Kind.CALL or term.is_jump:
                continue
            target = term.imm
            callee = ctx.program.function_of(target)
            if callee is None:
                continue
            if target != callee.lo:
                yield self.diag(
                    f"{term.op.value} targets {target:#x}, the middle of "
                    f"{callee.name!r} (entry {callee.lo:#x})",
                    addr=term.addr, function=block.function,
                    fix_hint=f"call {callee.name!r} at its entry point")
                continue
            link = term.rd
            ret_regs = returns.get(callee.name)
            if link is None or not ret_regs:
                continue
            if link not in ret_regs:
                names = ", ".join(sorted(Register.name(r)
                                         for r in ret_regs))
                yield self.diag(
                    f"call links through {Register.name(link)} but "
                    f"{callee.name!r} returns through {names}",
                    addr=term.addr, function=block.function,
                    fix_hint=f"use the callee's link register or fix "
                             f"the callee's return")

    @staticmethod
    def _returns_by_function(ctx: LintContext) -> Dict[str, set]:
        """Function name -> set of link registers its returns read."""
        out: Dict[str, set] = {}
        for block in ctx.cfg.blocks:
            term = block.terminator
            if term.kind is Kind.RETURN and not term.can_fall_through \
                    and term.sources:
                out.setdefault(block.function, set()).add(term.sources[0])
        return out


class ImplicitFallThroughRule(LintRule):
    """A reachable path runs off the end of one function into the next."""

    rule_id = "L008"
    name = "implicit-fall-through"
    severity = Severity.WARNING
    description = ("execution can fall off the end of a function into "
                   "the one after it without an explicit transfer")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if not block.falls_off or block.index not in ctx.cfg.reachable:
                continue
            nxt = ctx.cfg.block_of(block.end)
            if nxt is None:
                continue  # off the text entirely: L004's business
            yield self.diag(
                f"{block.function!r} can fall through into "
                f"{nxt.function!r} at {block.end:#x}",
                addr=block.terminator.addr, function=block.function,
                fix_hint="end the function with an explicit return or "
                         "jump")


#: The default rule line-up, in report order.
DEFAULT_RULES: Tuple[LintRule, ...] = (
    FlushInLoopRule(),
    SerializeInLoopRule(),
    UnreachableBlockRule(),
    FallThroughOffTextRule(),
    ZeroRegisterWriteRule(),
    FunctionOverlapRule(),
    CallReturnMismatchRule(),
    ImplicitFallThroughRule(),
)

#: Rule id -> rule instance.
RULES_BY_ID: Dict[str, LintRule] = {r.rule_id: r for r in DEFAULT_RULES}

#: Structural rules every generated workload must pass (self-check set).
STRUCTURAL_RULE_IDS: Tuple[str, ...] = ("L003", "L004", "L006")
