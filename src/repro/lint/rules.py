"""Lint rules over the control-flow graph.

Two severity classes, checked against different expectations:

* **errors** are structural defects a generated or hand-written program
  must never have (unreachable code, falling off the text segment,
  overlapping function symbols) -- the workload generators self-check
  against these;
* **warnings** are performance anti-patterns the paper's case study is
  built on (flush-inducing CSR accesses in hot code, Section 6) plus
  code-quality smells (discarded writes to ``x0``, link-register
  mismatches).

Each rule has a stable id (``L001``..) used by tests, CI greps and the
docs table in ``docs/lint.md``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..isa.instruction import Register
from ..isa.opcodes import Kind
from ..isa.program import FunctionSymbol
from .absint.rules import ABSINT_RULES, ABSINT_RULE_IDS
from .context import LintContext, LintRule
from .dataflow import used_registers
from .diagnostics import Diagnostic, FixHint, Severity

__all__ = [
    "ABSINT_RULE_IDS",
    "DATAFLOW_RULE_IDS",
    "DEFAULT_RULES",
    "LintContext",
    "LintRule",
    "RULES_BY_ID",
    "SELF_CHECK_RULE_IDS",
    "STRUCTURAL_RULE_IDS",
]


class FlushInLoopRule(LintRule):
    """The Imagick anti-pattern (paper Section 6).

    A flush-on-commit instruction (``frflags``/``fsflags``/``csrrw``/
    ``ecall``) inside a natural loop -- or in a function transitively
    called from one -- flushes the whole pipeline every iteration.  The
    paper's fix (replace the CSR pair with ``nop``) bought 1.93x on
    Imagick.
    """

    rule_id = "L001"
    name = "flush-in-loop"
    severity = Severity.WARNING
    description = ("pipeline-flushing instruction executed repeatedly "
                   "(inside a loop or a function called from one)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if block.index not in ctx.cfg.reachable:
                continue
            for inst in block.instructions:
                if not inst.flushes_on_commit or inst.kind is Kind.SRET:
                    continue
                context = ctx.cfg.hot_context(inst.addr)
                if context is None:
                    continue
                how, header = context
                where = (f"inside the loop at {header:#x}"
                         if how == "loop"
                         else f"in a function called from the loop at "
                              f"{header:#x}")
                yield self.diag(
                    f"{inst.op.value} flushes the pipeline on commit "
                    f"{where}",
                    addr=inst.addr, function=block.function,
                    fix_hint=FixHint(
                        action="nop",
                        text=("replace with `nop` if the FP-status "
                              "access is not required (paper Section 6: "
                              "1.93x on Imagick)"),
                        addrs=(inst.addr,), header=header))


class SerializeInLoopRule(LintRule):
    """Serializing instructions (fence/atomics) in hot code drain the ROB."""

    rule_id = "L002"
    name = "serialize-in-loop"
    severity = Severity.WARNING
    description = ("serializing instruction executed repeatedly; each one "
                   "drains the ROB before dispatch and blocks until commit")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if block.index not in ctx.cfg.reachable:
                continue
            for inst in block.instructions:
                if not inst.is_serializing:
                    continue
                context = ctx.cfg.hot_context(inst.addr)
                if context is None:
                    continue
                how, header = context
                where = ("inside" if how == "loop" else "reached from")
                yield self.diag(
                    f"{inst.op.value} serializes the pipeline, "
                    f"{where} the loop at {header:#x}",
                    addr=inst.addr, function=block.function,
                    fix_hint="hoist it out of the loop if semantics allow")


class UnreachableBlockRule(LintRule):
    """Basic blocks no path from the entry point can execute."""

    rule_id = "L003"
    name = "unreachable-block"
    severity = Severity.ERROR
    description = "basic block unreachable from the program entry point"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if block.index in ctx.cfg.reachable:
                continue
            yield self.diag(
                f"basic block {block.start:#x}..{block.end:#x} "
                f"({len(block.instructions)} instructions) is unreachable "
                f"from the entry point",
                addr=block.start, function=block.function,
                fix_hint="delete the dead code or add a path to it")


class FallThroughOffTextRule(LintRule):
    """Execution can run past the last instruction of the text segment."""

    rule_id = "L004"
    name = "fall-through-off-text"
    severity = Severity.ERROR
    description = ("a reachable path falls through the end of the text "
                   "segment into unmapped memory")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if not block.falls_off or block.index not in ctx.cfg.reachable:
                continue
            if block.end in ctx.program:
                continue  # falls into another function: L008's business
            yield self.diag(
                f"{block.terminator.op.value} at {block.terminator.addr:#x} "
                f"can fall through past the end of the text segment "
                f"({ctx.program.text_hi:#x})",
                addr=block.terminator.addr, function=block.function,
                fix_hint="end the path with halt, a jump or a return")


class ZeroRegisterWriteRule(LintRule):
    """Non-control writes to the hard-wired zero register are dead."""

    rule_id = "L005"
    name = "zero-register-write"
    severity = Severity.WARNING
    description = ("instruction writes x0; the result is silently "
                   "discarded (x0 is hard-wired to zero)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            for inst in block.instructions:
                if inst.rd != 0 or inst.rd is None:
                    continue
                # jalr x0 (return) and jal x0 (jump) discard the link on
                # purpose; nop is the canonical x0 write.
                if inst.is_control or inst.kind is Kind.NOP:
                    continue
                yield self.diag(
                    f"{inst.op.value} writes {Register.name(0)}; the "
                    f"result is discarded",
                    addr=inst.addr, function=block.function,
                    fix_hint="drop the instruction or pick a real "
                             "destination register")


class FunctionOverlapRule(LintRule):
    """Function symbol ranges that overlap each other.

    Overlaps make profile attribution ambiguous and are how
    self-modifying or mis-linked images show up in the symbol table.
    """

    rule_id = "L006"
    name = "function-overlap"
    severity = Severity.ERROR
    description = "two function symbols cover overlapping address ranges"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        funcs: List[FunctionSymbol] = ctx.program.functions  # sorted by lo
        for prev, cur in zip(funcs, funcs[1:]):
            if cur.lo < prev.hi:
                yield self.diag(
                    f"function {cur.name!r} [{cur.lo:#x}, {cur.hi:#x}) "
                    f"overlaps {prev.name!r} [{prev.lo:#x}, {prev.hi:#x})",
                    addr=cur.lo, function=cur.name,
                    fix_hint="fix the symbol ranges so every address maps "
                             "to exactly one function")


class CallReturnMismatchRule(LintRule):
    """Calls that cannot return to their call site.

    Two shapes: a direct call into the *middle* of a function (the
    callee's entry is bypassed), and a callee whose returns use a
    different link register than the one the call wrote -- its ``jalr``
    will jump through a stale register.
    """

    rule_id = "L007"
    name = "call-return-mismatch"
    severity = Severity.WARNING
    description = ("call target is not a function entry, or the callee "
                   "returns through a different link register")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        returns = self._returns_by_function(ctx)
        for block in ctx.cfg.blocks:
            if block.index not in ctx.cfg.reachable:
                continue
            term = block.terminator
            if term.kind is not Kind.CALL or term.is_jump:
                continue
            target = term.imm
            callee = ctx.program.function_of(target)
            if callee is None:
                continue
            if target != callee.lo:
                yield self.diag(
                    f"{term.op.value} targets {target:#x}, the middle of "
                    f"{callee.name!r} (entry {callee.lo:#x})",
                    addr=term.addr, function=block.function,
                    fix_hint=f"call {callee.name!r} at its entry point")
                continue
            link = term.rd
            ret_regs = returns.get(callee.name)
            if link is None or not ret_regs:
                continue
            if link not in ret_regs:
                names = ", ".join(sorted(Register.name(r)
                                         for r in ret_regs))
                yield self.diag(
                    f"call links through {Register.name(link)} but "
                    f"{callee.name!r} returns through {names}",
                    addr=term.addr, function=block.function,
                    fix_hint=f"use the callee's link register or fix "
                             f"the callee's return")

    @staticmethod
    def _returns_by_function(ctx: LintContext) -> Dict[str, set]:
        """Function name -> set of link registers its returns read."""
        out: Dict[str, set] = {}
        for block in ctx.cfg.blocks:
            term = block.terminator
            if term.kind is Kind.RETURN and not term.can_fall_through \
                    and term.sources:
                out.setdefault(block.function, set()).add(term.sources[0])
        return out


class ImplicitFallThroughRule(LintRule):
    """A reachable path runs off the end of one function into the next."""

    rule_id = "L008"
    name = "implicit-fall-through"
    severity = Severity.WARNING
    description = ("execution can fall off the end of a function into "
                   "the one after it without an explicit transfer")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if not block.falls_off or block.index not in ctx.cfg.reachable:
                continue
            nxt = ctx.cfg.block_of(block.end)
            if nxt is None:
                continue  # off the text entirely: L004's business
            yield self.diag(
                f"{block.function!r} can fall through into "
                f"{nxt.function!r} at {block.end:#x}",
                addr=block.terminator.addr, function=block.function,
                fix_hint="end the function with an explicit return or "
                         "jump")


class UninitializedReadRule(LintRule):
    """Reads of registers no definition dominates (entry function only).

    Uses the definite-assignment must-analysis: at the program entry
    point nothing has been initialized, so a read the analysis cannot
    prove assigned on *every* path really does observe whatever the
    reset state left behind.  Non-entry functions are exempt -- their
    live-in registers are arguments supplied by the caller, which the
    intraprocedural analysis cannot see.
    """

    rule_id = "L009"
    name = "uninitialized-read"
    severity = Severity.WARNING
    description = ("register read before any assignment on some path "
                   "from the program entry point")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        entry_fn = ctx.function_name(ctx.program.entry)
        if entry_fn is None:
            return
        indices = ctx.cfg.functions.get(entry_fn)
        if not indices \
                or ctx.cfg.blocks[indices[0]].start != ctx.program.entry:
            return  # entry is mid-function; the walk would be wrong
        assignment = ctx.assignment(entry_fn)
        flagged: set = set()
        for index in sorted(assignment.states):
            block = ctx.cfg.blocks[index]
            for inst, assigned in assignment.at(block):
                for reg in used_registers(inst):
                    if reg in assigned or reg in flagged:
                        continue
                    flagged.add(reg)
                    yield self.diag(
                        f"{inst.op.value} reads {Register.name(reg)} "
                        f"before any assignment on some path from the "
                        f"entry point",
                        addr=inst.addr, function=block.function,
                        fix_hint=f"initialize {Register.name(reg)} "
                                 f"before this use")


class DeadStoreRule(LintRule):
    """Computed values no later instruction can ever read.

    Backward liveness with conservative boundaries: everything is live
    at returns/halts and across calls, so a store flagged here is dead
    on *every* path, not just the hot one.  Only pure computation kinds
    are candidates -- memory, control and CSR accesses have effects
    beyond their destination register.
    """

    rule_id = "L010"
    name = "dead-store"
    severity = Severity.WARNING
    description = ("instruction result is never read on any path "
                   "(dead store)")

    _KINDS = frozenset({Kind.ALU, Kind.MUL, Kind.DIV, Kind.FP_ALU,
                        Kind.FP_DIV})

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for function in ctx.cfg.functions:
            liveness = ctx.liveness(function)
            for index in sorted(liveness.states):
                if index not in ctx.cfg.reachable:
                    continue
                block = ctx.cfg.blocks[index]
                live_after = liveness.live_after(block)
                for inst, live in zip(block.instructions, live_after):
                    if inst.kind not in self._KINDS:
                        continue
                    if inst.rd is None or inst.rd == 0:
                        continue  # x0 writes are L005's business
                    if inst.rd in live:
                        continue
                    yield self.diag(
                        f"{inst.op.value} writes "
                        f"{Register.name(inst.rd)} but the value is "
                        f"never read",
                        addr=inst.addr, function=block.function,
                        fix_hint=FixHint(
                            action="delete",
                            text="delete the instruction or use its "
                                 "result",
                            addrs=(inst.addr,)))


class ConstantUnreachableRule(LintRule):
    """Blocks only reachable through statically-false branches.

    L003 finds blocks with no inbound path at all; this rule finds the
    semantic kind -- the path exists, but constant propagation proves
    the branch guarding it always goes the other way.
    """

    rule_id = "L011"
    name = "const-unreachable"
    severity = Severity.WARNING
    description = ("basic block can never execute: every path to it "
                   "crosses a branch whose outcome is a constant")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for function in ctx.cfg.functions:
            constants = ctx.constants(function)
            dead = constants.structural - constants.executable
            for index in sorted(dead):
                if index not in ctx.cfg.reachable:
                    continue  # structurally unreachable: L003's business
                block = ctx.cfg.blocks[index]
                detail = ""
                for pred in block.predecessors:
                    if pred in constants.verdicts:
                        term = ctx.cfg.blocks[pred].terminator
                        way = ("taken" if constants.verdicts[pred]
                               else "fall-through")
                        detail = (f"; {term.op.value} at "
                                  f"{term.addr:#x} is always {way}")
                        break
                yield self.diag(
                    f"block {block.start:#x}..{block.end:#x} can never "
                    f"execute{detail}",
                    addr=block.start, function=block.function,
                    fix_hint=FixHint(
                        action="prune",
                        text="remove the dead code or fix the branch "
                             "condition",
                        addrs=tuple(i.addr
                                    for i in block.instructions)))


class InvariantFlushRule(LintRule):
    """Loop-invariant flush-inducing CSR accesses (semantic Section 6).

    L001 flags *any* flush instruction in hot code; this rule proves
    more: the instruction's operands cannot change between executions,
    so it recomputes the same value while flushing the pipeline every
    time -- exactly the Imagick ``frflags``/``fsflags`` shape.  Works
    on multi-block loop bodies via reaching definitions, and on the
    called-from-a-loop shape by treating the whole callee as the
    repeated region (with entry values considered variant, since each
    call may pass different registers).
    """

    rule_id = "L012"
    name = "invariant-flush"
    severity = Severity.WARNING
    description = ("flush-inducing instruction is loop-invariant: it "
                   "recomputes the same value every iteration")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for block in ctx.cfg.blocks:
            if block.index not in ctx.cfg.reachable:
                continue
            for inst in block.instructions:
                if not inst.flushes_on_commit or inst.kind is Kind.SRET:
                    continue
                context = ctx.cfg.hot_context(inst.addr)
                if context is None:
                    continue
                how, header = context
                function = block.function
                if how == "loop":
                    loop = ctx.loop_nest(function).innermost(block.index)
                    if loop is None:
                        continue
                    region = frozenset(loop.body)
                    entry_is_variant = False
                    where = f"the loop at {header:#x}"
                else:
                    reaching = ctx.reaching(function)
                    region = frozenset(reaching.states)
                    entry_is_variant = True
                    where = (f"every call of {function!r} from the "
                             f"loop at {header:#x}")
                invariant = ctx.invariants(function, region,
                                           entry_is_variant)
                if inst.addr not in invariant:
                    continue
                yield self.diag(
                    f"{inst.op.value} is loop-invariant: it recomputes "
                    f"the same value in {where} while flushing the "
                    f"pipeline on every commit",
                    addr=inst.addr, function=function,
                    fix_hint=FixHint(
                        action="hoist",
                        text=("hoist the access out of the loop, or "
                              "replace the pair with `nop` if the "
                              "FP-status result is unused (paper "
                              "Section 6: 1.93x on Imagick)"),
                        addrs=(inst.addr,), header=header))


class NoTimeDrivenExitRule(LintRule):
    """Loops whose exit conditions nothing inside the loop can change.

    The event-driven fast path (``--sim fast``) advances time to the
    next scheduled event; a loop that neither terminates (halt/return/
    call) nor redefines any register its exit branches test will spin
    without generating events -- the static shape behind fast-path
    non-quiescence.
    """

    rule_id = "L013"
    name = "no-time-driven-exit"
    severity = Severity.WARNING
    description = ("loop has no exit whose condition changes inside "
                   "the loop body")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        merged: Dict[Tuple[str, int], Set[int]] = {}
        for loop in ctx.cfg.loops:
            key = (loop.function, loop.header)
            merged.setdefault(key, set()).update(loop.body)
        for (function, header_index), body in sorted(
                merged.items(), key=lambda kv: kv[0][1]):
            if header_index not in ctx.cfg.reachable:
                continue
            header = ctx.cfg.blocks[header_index].start
            if not self._spins_forever(ctx, function, body):
                continue
            yield self.diag(
                f"loop at {header:#x} has no time-driven exit: no exit "
                f"condition is redefined inside the loop body",
                addr=header, function=function,
                fix_hint=("make an exit branch test state the loop "
                          "updates; the event-driven fast path "
                          "(`--sim fast`) cannot quiesce a loop with "
                          "no pending events"))

    @staticmethod
    def _spins_forever(ctx: LintContext, function: str,
                       body: Set[int]) -> bool:
        reaching = ctx.reaching(function)
        absint = ctx.absint()
        body_addrs = {inst.addr for index in body
                      for inst in ctx.cfg.blocks[index].instructions}
        for index in body:
            block = ctx.cfg.blocks[index]
            # Calls, halts, returns and fall-offs all hand control to
            # code outside the loop: conservatively time-driven.
            if block.call_targets or block.falls_off:
                return False
            term = block.terminator
            if term.kind in (Kind.HALT, Kind.SRET, Kind.RETURN,
                             Kind.CALL):
                return False
            exits = any(succ not in body for succ in block.successors)
            if not exits:
                continue
            if not term.is_branch:
                return False  # unconditional transfer out of the loop
            if NoTimeDrivenExitRule._absint_stays_in(ctx, absint,
                                                     index, body):
                # Value ranges prove the exit edge is never taken:
                # this "exit" cannot end the spin.
                continue
            env = None
            for inst, value in reaching.at(block):
                if inst is term:
                    env = value
            for reg in used_registers(term):
                sites = (env or {}).get(reg, frozenset())
                if sites & frozenset(body_addrs):
                    return False  # the condition changes in the loop
        return True

    @staticmethod
    def _absint_stays_in(ctx: LintContext, absint, index: int,
                         body: Set[int]) -> bool:
        """Does the abstract interpretation prove the branch ending
        block *index* always stays inside *body*?"""
        if index not in absint.verdicts:
            return False
        term = ctx.cfg.blocks[index].terminator
        target = term.imm if absint.verdicts[index] else term.next_addr
        succ = ctx.cfg.block_index_of(target)
        return succ is not None and succ in body


#: The default rule line-up, in report order.
DEFAULT_RULES: Tuple[LintRule, ...] = (
    FlushInLoopRule(),
    SerializeInLoopRule(),
    UnreachableBlockRule(),
    FallThroughOffTextRule(),
    ZeroRegisterWriteRule(),
    FunctionOverlapRule(),
    CallReturnMismatchRule(),
    ImplicitFallThroughRule(),
    UninitializedReadRule(),
    DeadStoreRule(),
    ConstantUnreachableRule(),
    InvariantFlushRule(),
    NoTimeDrivenExitRule(),
) + ABSINT_RULES

#: Rule id -> rule instance.
RULES_BY_ID: Dict[str, LintRule] = {r.rule_id: r for r in DEFAULT_RULES}

#: Structural rules every generated workload must pass (self-check set).
STRUCTURAL_RULE_IDS: Tuple[str, ...] = ("L003", "L004", "L006")

#: The dataflow-powered rule family (toggled by ``--no-dataflow``).
#: The abstract-interpretation rules (L014..) ride the same switch --
#: they are strictly deeper analyses of the same kind.
DATAFLOW_RULE_IDS: Tuple[str, ...] = ("L009", "L010", "L011", "L012",
                                      "L013") + ABSINT_RULE_IDS

#: Rules the workload generators self-check against: the structural
#: errors plus const-proven unreachable code plus the memory-safety /
#: stack-discipline proofs (any diagnostic from this set fails the
#: build, regardless of severity).  L018/L019 stay advisory: a proven
#: one-way branch or an over-long loop is suspicious, not wrong.
SELF_CHECK_RULE_IDS: Tuple[str, ...] = STRUCTURAL_RULE_IDS + (
    "L011", "L014", "L015", "L016", "L017")
