"""The guest calling convention the stack rules check against.

The ISA itself has no fixed ABI -- ``main`` calls kernels through
``x1`` and kernels call helpers through ``x2`` by repo convention
(see ``workloads/generator.py``).  The stack discipline rules add two
more conventions, chosen so the whole existing corpus (generated
kernels clobber only ``x5..x27``/``f1..f15``) is trivially conformant:

* ``x31`` is the stack pointer: a function must return with it equal
  to its entry value (L016);
* ``x28..x30`` are callee-saved: a function that writes one must
  restore the entry value before returning (L017).
"""

from __future__ import annotations

from typing import FrozenSet

#: The stack-pointer register (``x31``).
STACK_POINTER: int = 31

#: Callee-saved integer registers a function must preserve
#: (``x28..x30``; ``x31`` is covered separately by the stack-balance
#: rule).
CALLEE_SAVED: FrozenSet[int] = frozenset({28, 29, 30})
