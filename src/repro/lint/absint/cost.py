"""Static per-instruction cycle-cost model.

A deliberately *first-order* expectation of where time goes, built
entirely from the abstract interpretation:

* issue latency from the opcode table;
* memory cost tiered by the access's proven footprint -- the abstract
  address interval tells us how much memory the instruction can sweep,
  which picks the cache level it plausibly hits;
* execution weight from proven loop trip counts (bounded loops use the
  proof, unbounded loops a fixed default) multiplied through the call
  graph;
* a small fixed charge for flush-on-commit instructions covering the
  refill only.

The model intentionally *under*-costs second-order effects (flush
serialization, bandwidth, dependency stalls): when TIP's dynamic
attribution gives an instruction far more time than this model does,
that gap *is* the signal ``repro annotate`` surfaces -- the paper's
Section 6 Imagick flush pair being the golden case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...isa.disasm import format_instruction
from ...mem.hierarchy import MemoryConfig
from ..context import LintContext
from .domain import AbsVal

#: Iterations assumed for a loop the engine cannot bound.
DEFAULT_TRIPS = 100
#: Fixed cost charged to a flush-on-commit instruction (the front-end
#: refill only; the real drain cost is a second-order effect the model
#: deliberately leaves out).
FLUSH_COST = 4.0
#: Cap on any execution-count weight (keeps recursion and deep nests
#: finite).
MAX_WEIGHT = 1e12


@dataclass
class CostLine:
    """One instruction's static expectation."""

    addr: int
    function: str
    text: str
    #: Expected cycles for a single execution.
    per_exec: float
    #: Expected number of executions (trip counts x call-graph weight).
    weight: float

    @property
    def total(self) -> float:
        return self.per_exec * self.weight


@dataclass
class CostReport:
    """The whole program's static cost expectation."""

    lines: List[CostLine] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(line.total for line in self.lines)

    def shares(self) -> Dict[int, float]:
        """Instruction address -> expected share of total cycles."""
        total = self.total
        if total <= 0:
            return {line.addr: 0.0 for line in self.lines}
        return {line.addr: line.total / total for line in self.lines}

    def render(self, top: Optional[int] = None) -> str:
        total = self.total
        rows = sorted(self.lines, key=lambda l: (-l.total, l.addr))
        if top is not None:
            rows = rows[:top]
        out = [f"static cost model: {total:.0f} expected cycles over "
               f"{len(self.lines)} instructions",
               f"{'addr':>10}  {'share':>6}  {'cycles':>12}  "
               f"{'execs':>10}  {'function':<14} instruction"]
        for line in rows:
            share = line.total / total if total > 0 else 0.0
            out.append(f"{line.addr:#10x}  {share:6.1%}  "
                       f"{line.total:12.0f}  {line.weight:10.0f}  "
                       f"{line.function:<14} {line.text}")
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "total_cycles": self.total,
            "lines": [{"addr": line.addr, "function": line.function,
                       "text": line.text, "per_exec": line.per_exec,
                       "weight": line.weight, "total": line.total}
                      for line in sorted(self.lines,
                                         key=lambda l: l.addr)],
        }


def _memory_cost(value: AbsVal, size: int, mem: MemoryConfig) -> float:
    """Cache-tier cost from the access's proven footprint: an access
    sweeping no more than a cache level's capacity is costed at that
    level's hit latency."""
    if value.lo == float("-inf") or value.hi == float("inf"):
        return float(mem.l1d_latency)  # unknown: optimistic baseline
    span = value.hi - value.lo + size
    if span <= mem.l1d_size:
        return float(mem.l1d_latency)
    if span <= mem.l2_size:
        return float(mem.l2_latency)
    if span <= mem.llc_size:
        return float(mem.llc_latency)
    return float(mem.dram_latency)


def static_cost_report(ctx: LintContext,
                       mem: Optional[MemoryConfig] = None) -> CostReport:
    """Build the static cost expectation for *ctx*'s program."""
    mem = mem or MemoryConfig()
    result = ctx.absint()
    cfg = ctx.cfg

    # Merged natural-loop bodies per (function, header).
    bodies: Dict[Tuple[str, int], set] = {}
    for loop in cfg.loops:
        bodies.setdefault((loop.function, loop.header),
                          set()).update(loop.body)

    def block_weight(function: str, index: int) -> float:
        weight = 1.0
        for (fn, header), body in bodies.items():
            if fn != function or index not in body:
                continue
            trips = result.trip_bounds.get((fn, header), DEFAULT_TRIPS)
            weight = min(weight * max(trips, 1), MAX_WEIGHT)
        return weight

    # Function weights: expected call counts through the call graph.
    fn_weight: Dict[str, float] = {}
    entry_block = cfg.block_of(ctx.program.entry)
    if entry_block is not None:
        fn_weight[entry_block.function] = 1.0
    entry_weight = dict(fn_weight)
    for _ in range(10):  # bounded rounds; recursion saturates at the cap
        updated = dict(entry_weight)
        for function, weight in fn_weight.items():
            for index in cfg.functions.get(function, ()):
                block = cfg.blocks[index]
                term = block.terminator
                if not (term.is_call and not term.is_jump):
                    continue
                callee = ctx.program.function_of(term.imm)
                if callee is None:
                    continue
                contribution = min(
                    weight * block_weight(function, index), MAX_WEIGHT)
                updated[callee.name] = min(
                    updated.get(callee.name, 0.0) + contribution,
                    MAX_WEIGHT)
        if updated == fn_weight:
            break
        fn_weight = updated

    report = CostReport()
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        base = fn_weight.get(block.function, 1.0)
        weight = min(base * block_weight(block.function, block.index),
                     MAX_WEIGHT)
        for inst in block.instructions:
            per_exec = float(inst.latency)
            if inst.is_mem:
                access = result.accesses.get(inst.addr)
                value = access.value if access is not None else AbsVal()
                per_exec += _memory_cost(value, 8, mem)
            if inst.flushes_on_commit:
                per_exec += FLUSH_COST
            report.lines.append(CostLine(
                addr=inst.addr, function=block.function,
                text=format_instruction(inst), per_exec=per_exec,
                weight=weight))
    report.lines.sort(key=lambda l: l.addr)
    return report
