"""Interprocedural abstract interpretation over guest programs.

Layout:

* :mod:`~repro.lint.absint.domain` -- the product domain (intervals x
  congruence mod 8 x stack-offset and entry-value tags) and abstract
  transfer functions derived from :mod:`repro.isa.semantics`;
* :mod:`~repro.lint.absint.engine` -- the widening/narrowing fixpoint
  interpreter with per-function summaries;
* :mod:`~repro.lint.absint.rules` -- lint rules L014..L019;
* :mod:`~repro.lint.absint.cost` -- the static per-instruction cycle
  cost model behind ``repro lint --cost`` and ``repro annotate``;
* :mod:`~repro.lint.absint.abi` -- the stack/callee-saved conventions
  the stack rules check against.
"""

from .abi import CALLEE_SAVED, STACK_POINTER
from .cost import (CostLine, CostReport, DEFAULT_TRIPS, FLUSH_COST,
                   static_cost_report)
from .domain import (ALL_RESIDUES, AbsVal, TOP, abstract_evaluate,
                     refine_branch)
from .engine import (AbsintResult, AbsState, AbstractInterpreter,
                     FunctionSummary, MemAccess, analyze_program,
                     join_states, widen_states)
from .rules import ABSINT_RULES, ABSINT_RULE_IDS

__all__ = [
    "ABSINT_RULES",
    "ABSINT_RULE_IDS",
    "ALL_RESIDUES",
    "AbsState",
    "AbsVal",
    "AbsintResult",
    "AbstractInterpreter",
    "CALLEE_SAVED",
    "CostLine",
    "CostReport",
    "DEFAULT_TRIPS",
    "FLUSH_COST",
    "FunctionSummary",
    "MemAccess",
    "STACK_POINTER",
    "TOP",
    "abstract_evaluate",
    "analyze_program",
    "join_states",
    "refine_branch",
    "static_cost_report",
    "widen_states",
]
