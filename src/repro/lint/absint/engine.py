"""The interprocedural abstract-interpretation engine.

A widening/narrowing fixpoint interpreter over the existing
control-flow graph plus a call graph with per-function summaries:

* **per function**: a worklist fixpoint over basic blocks in the
  product domain of :mod:`repro.lint.absint.domain`, with threshold
  widening (the thresholds are the program's own immediates ``±1``, so
  counted loops stabilise on their real bounds) followed by a bounded
  narrowing: decreasing Jacobi passes that are only accepted when they
  re-reach a fixpoint, otherwise the widened post-fixpoint is kept --
  soundness never depends on the narrowing converging;
* **across functions**: callee entry environments are the join of the
  translated call-site environments, and each function exports a
  :class:`FunctionSummary` (preserved registers, return-value
  environment, stack behaviour).  The caller/callee system iterates to
  a global fixpoint with bounded rounds.

The engine is *honest about its own applicability*: control flow it
cannot model soundly (indirect calls, cross-function jumps, returns
whose link register is not provably the entry value) degrades the
whole result to ``TOP`` instead of producing claims that a concrete
execution could escape.  The hypothesis property test drives random
programs through the reference interpreter and asserts every concrete
register value and effective address stays inside the abstract result.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import (Dict, FrozenSet, Iterable, List, Optional, Set,
                    Tuple)

from ...isa.instruction import Instruction, Register
from ...isa.opcodes import Kind, Op
from ...isa.program import Program
from ..cfg import BasicBlock, ControlFlowGraph
from ..dataflow import _function_blocks, is_call_like
from .domain import (ALL_RESIDUES, AbsVal, NEG_INF, POS_INF, TOP,
                     abstract_evaluate, refine_branch)
from .abi import STACK_POINTER

#: Block-entry joins beyond this visit count start widening.
_WIDEN_AFTER = 3
#: Decreasing (narrowing) Jacobi passes attempted per function.
_NARROW_PASSES = 3
#: Global caller/callee rounds before forced entry-env widening.
_WIDEN_ROUND = 3
#: Hard cap on global rounds (then the result degrades to TOP).
_MAX_ROUNDS = 20

_ZERO = AbsVal.const(0)

#: Access width in bytes per memory opcode.
_ACCESS_SIZE = {Op.LW: 4, Op.SW: 4}


class AbsState:
    """One abstract machine state: registers plus the local frame.

    ``regs`` is sparse -- a missing register is ``TOP``.  ``frame``
    maps *entry-SP-relative byte offsets* of this function's own saved
    slots to the stored abstract value; anything that could clobber
    the frame (a non-SP store, an SP store at an unknown offset, a
    call into a function that may touch the stack) clears it.
    """

    __slots__ = ("regs", "frame")

    def __init__(self, regs: Optional[Dict[int, AbsVal]] = None,
                 frame: Optional[Dict[float, AbsVal]] = None):
        self.regs: Dict[int, AbsVal] = regs or {}
        self.frame: Dict[float, AbsVal] = frame or {}

    def reg(self, index: int) -> AbsVal:
        if index == 0:
            return _ZERO
        return self.regs.get(index, TOP)

    def write(self, index: int, value: AbsVal) -> "AbsState":
        regs = dict(self.regs)
        if value.is_top_value:
            regs.pop(index, None)
        else:
            regs[index] = value
        return AbsState(regs, self.frame)

    def copy(self) -> "AbsState":
        return AbsState(dict(self.regs), dict(self.frame))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AbsState)
                and self.regs == other.regs
                and self.frame == other.frame)

    def __hash__(self) -> int:  # pragma: no cover - not used as keys
        return hash((frozenset(self.regs.items()),
                     frozenset(self.frame.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = ", ".join(f"{Register.name(r)}={v}"
                         for r, v in sorted(self.regs.items()))
        return f"<AbsState {regs}>"


def join_states(a: Optional[AbsState],
                b: Optional[AbsState]) -> Optional[AbsState]:
    if a is None:
        return b
    if b is None:
        return a
    regs: Dict[int, AbsVal] = {}
    for key in a.regs.keys() | b.regs.keys():
        value = a.regs.get(key, TOP).join(b.regs.get(key, TOP))
        if not value.is_top_value:
            regs[key] = value
    frame: Dict[float, AbsVal] = {}
    for off in a.frame.keys() & b.frame.keys():
        value = a.frame[off].join(b.frame[off])
        if not value.is_top_value:
            frame[off] = value
    return AbsState(regs, frame)


def widen_states(old: AbsState, new: AbsState,
                 thresholds: Tuple[float, ...]) -> AbsState:
    regs: Dict[int, AbsVal] = {}
    for key in old.regs.keys() | new.regs.keys():
        value = old.regs.get(key, TOP).widen(new.regs.get(key, TOP),
                                             thresholds)
        if not value.is_top_value:
            regs[key] = value
    frame: Dict[float, AbsVal] = {}
    for off in old.frame.keys() & new.frame.keys():
        value = old.frame[off].widen(new.frame[off], thresholds)
        if not value.is_top_value:
            frame[off] = value
    return AbsState(regs, frame)


@dataclass(frozen=True)
class FunctionSummary:
    """What a caller may assume after a call returns."""

    #: Registers whose value at every return provably equals the value
    #: at entry (so the caller keeps its own facts, tags included).
    preserved: FrozenSet[int] = frozenset(range(1, Register.TOTAL))
    #: Join of the return-site values for non-preserved registers
    #: (tags dropped; missing = TOP).
    returns: Dict[int, AbsVal] = field(default_factory=dict)
    #: Can the function return to its caller at all?
    may_return: bool = False
    #: May the function (transitively) write memory the caller's frame
    #: slots could alias?
    may_touch_stack: bool = False

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FunctionSummary)
                and self.preserved == other.preserved
                and self.returns == other.returns
                and self.may_return == other.may_return
                and self.may_touch_stack == other.may_touch_stack)


#: The summary of a callee the engine knows nothing about.
WORST_SUMMARY = FunctionSummary(preserved=frozenset(), returns={},
                                may_return=True, may_touch_stack=True)


@dataclass
class MemAccess:
    """The joined abstraction of every context reaching one memory op."""

    addr: int
    function: str
    op: Op
    size: int
    is_store: bool
    is_load: bool
    #: Abstract effective address (join over all contexts).
    value: AbsVal = TOP

    @property
    def sp_relative(self) -> bool:
        return self.value.sp is not None


class AbsintResult:
    """Everything one whole-program analysis produced."""

    def __init__(self, interp: "AbstractInterpreter"):
        self._interp = interp
        self.program = interp.program
        self.cfg = interp.cfg
        #: Block index -> abstract state at block entry (``None`` =
        #: proven unreachable under the abstraction).  Only blocks of
        #: analyzed (transitively called) functions appear.
        self.envs: Dict[int, Optional[AbsState]] = {}
        #: Block index -> decided branch verdict of its terminator.
        self.verdicts: Dict[int, bool] = {}
        #: Instruction addr -> joined memory-access abstraction.
        self.accesses: Dict[int, MemAccess] = {}
        #: (function, header block index) -> proven max header visits.
        self.trip_bounds: Dict[Tuple[str, int], int] = {}
        self.summaries: Dict[str, FunctionSummary] = {}
        #: Return-site states per function: (terminator, state).
        self.return_states: Dict[str, List[Tuple[Instruction, AbsState]]] \
            = {}
        #: True when unsupported control flow degraded the whole
        #: result to TOP (every claim is trivial but still sound).
        self.degraded = False

    # -- queries -------------------------------------------------------------

    def analyzed(self, function: str) -> bool:
        return function in self.summaries

    def infeasible_blocks(self, function: str) -> Set[int]:
        """Structurally reachable blocks proven never to execute."""
        out = set()
        for index in self.cfg.functions.get(function, ()):
            if index in self.envs and self.envs[index] is None \
                    and index in self.cfg.reachable:
                out.add(index)
        return out

    def state_before(self, addr: int) -> Optional[AbsState]:
        """The abstract state just before the instruction at *addr*
        (``None`` when the instruction is proven unreachable or its
        function was never analyzed)."""
        block = self.cfg.block_of(addr)
        if block is None or block.index not in self.envs:
            return None
        state = self.envs[block.index]
        if state is None:
            return None
        for inst in block.instructions:
            if inst.addr == addr:
                return state
            next_state = self._interp.step(inst, state)
            if next_state is None:
                return None
            state = next_state
        return None

    def value_before(self, addr: int, reg: int) -> AbsVal:
        state = self.state_before(addr)
        if state is None:
            return TOP
        return state.reg(reg)


class AbstractInterpreter:
    """Runs the interprocedural analysis over one program."""

    def __init__(self, program: Program, cfg: ControlFlowGraph,
                 regions: Optional[Iterable[Tuple[int, int]]] = None):
        self.program = program
        self.cfg = cfg
        self.regions: Tuple[Tuple[int, int], ...] = \
            tuple(regions) if regions else ()
        self.thresholds = self._collect_thresholds(program)
        self._summaries: Dict[str, FunctionSummary] = {}
        self._entry_envs: Dict[str, AbsState] = {}
        self._result: Optional[AbsintResult] = None

    # -- public entry point --------------------------------------------------

    def run(self) -> AbsintResult:
        if self._result is not None:
            return self._result
        result = AbsintResult(self)
        entry_fn = self._entry_function()
        if entry_fn is None or self._unsupported_flow():
            self._degrade(result)
        else:
            self._entry_envs = {entry_fn: self._zeros_env()}
            converged = self._solve(entry_fn)
            self._record(result)
            if not converged or not self._returns_verified(result):
                self._degrade(result)
        self._result = result
        return result

    # -- setup ---------------------------------------------------------------

    @staticmethod
    def _collect_thresholds(program: Program) -> Tuple[float, ...]:
        points: Set[float] = {-1.0, 0.0, 1.0}
        for inst in program.instructions:
            if inst.imm is None:
                continue
            points.update((float(inst.imm - 1), float(inst.imm),
                           float(inst.imm + 1)))
        return tuple(sorted(points))

    def _entry_function(self) -> Optional[str]:
        block = self.cfg.block_of(self.program.entry)
        if block is None:
            return None
        indices = self.cfg.functions.get(block.function)
        if not indices or \
                self.cfg.blocks[indices[0]].start != self.program.entry:
            return None  # entry lands mid-function: cannot seed soundly
        return block.function

    def _zeros_env(self) -> AbsState:
        return AbsState({r: _ZERO for r in range(1, Register.TOTAL)})

    def _seed(self, function: str, entry_env: AbsState) -> AbsState:
        """Block-entry state for a function root: the joined call-site
        environment plus the tags that hold at entry by definition."""
        regs: Dict[int, AbsVal] = {}
        for reg in range(1, Register.TOTAL):
            value = replace(entry_env.reg(reg).drop_tags(), entry_of=reg)
            if reg == STACK_POINTER:
                value = replace(value, sp=(0.0, 0.0))
            if not value.is_top_value:
                regs[reg] = value
        return AbsState(regs, {})

    # -- applicability guard -------------------------------------------------

    def _unsupported_flow(self) -> bool:
        """Syntactic pre-scan for control flow the interprocedural
        model cannot follow soundly."""
        ret_links: Dict[str, Set[int]] = {}
        call_links: Dict[str, Set[int]] = {}
        for block in self.cfg.blocks:
            if block.index not in self.cfg.reachable:
                continue
            if block.falls_off:
                return True  # execution leaks into the next function
            for inst in block.instructions:
                if inst.kind is Kind.SRET:
                    return True  # trap return: target unmodelled
                if inst.op is Op.JALR:
                    if inst.rd not in (None, 0):
                        return True  # indirect call
                    if inst.imm != 0:
                        return True  # return offset from the link value
                    ret_links.setdefault(block.function,
                                         set()).add(inst.sources[0])
            term = block.terminator
            if term.kind is Kind.CALL and not term.is_jump:
                callee = self.program.function_of(term.imm)
                if callee is None or term.imm != callee.lo:
                    return True  # call into a function's middle
                call_links.setdefault(callee.name,
                                      set()).add(term.rd or 0)
            elif term.is_branch or term.is_jump:
                for target in term.static_targets():
                    if target == term.next_addr and term.is_branch:
                        continue
                    owner = self.cfg.block_of(target)
                    if owner is None or owner.function != block.function:
                        return True  # cross-function jump/branch
        for function, links in ret_links.items():
            combined = links | call_links.get(function, set())
            if len(combined) > 1:
                return True  # returns cannot target every call site
        return False

    def _returns_verified(self, result: AbsintResult) -> bool:
        """Every analyzed return must provably jump back to its call
        site: the link register still holds its entry value."""
        for states in result.return_states.values():
            for term, state in states:
                if term.kind is not Kind.RETURN or not term.sources:
                    continue
                link = term.sources[0]
                if state.reg(link).entry_of != link:
                    return False
        return True

    # -- global fixpoint -----------------------------------------------------

    def _call_order(self, entry_fn: str) -> List[str]:
        order = [fn for fn in (entry_fn,) if fn in self.cfg.functions]
        seen = set(order)
        queue = deque(order)
        while queue:
            fn = queue.popleft()
            for callee in self._direct_callees(fn):
                if callee not in seen and callee in self.cfg.functions:
                    seen.add(callee)
                    order.append(callee)
                    queue.append(callee)
        return order

    def _direct_callees(self, function: str) -> List[str]:
        out = []
        for index in self.cfg.functions.get(function, ()):
            term = self.cfg.blocks[index].terminator
            if term.kind is Kind.CALL and not term.is_jump:
                callee = self.program.function_of(term.imm)
                if callee is not None:
                    out.append(callee.name)
        return out

    def _solve(self, entry_fn: str) -> bool:
        for round_index in range(_MAX_ROUNDS):
            changed = False
            contributions: Dict[str, AbsState] = {}
            for fn in self._call_order(entry_fn):
                if fn not in self._entry_envs:
                    continue
                envs, summary, calls, _ = self._analyze_function(fn)
                if summary != self._summaries.get(fn):
                    self._summaries[fn] = summary
                    changed = True
                for callee, env in calls:
                    contributions[callee] = join_states(
                        contributions.get(callee), env) or env
            for callee, env in contributions.items():
                old = self._entry_envs.get(callee)
                joined = join_states(old, env)
                assert joined is not None
                if old is not None and round_index >= _WIDEN_ROUND:
                    joined = widen_states(old, joined, self.thresholds)
                if joined != old:
                    self._entry_envs[callee] = joined
                    changed = True
            if not changed:
                return True
        return False

    # -- per-function fixpoint -----------------------------------------------

    def _analyze_function(self, function: str):
        root, indices = _function_blocks(self.cfg, function)
        assert root is not None
        seed = self._seed(function, self._entry_envs[function])

        envs: Dict[int, Optional[AbsState]] = {i: None for i in indices}
        envs[root] = seed
        visits: Dict[int, int] = {}
        work = deque([root])
        while work:
            index = work.popleft()
            state = envs[index]
            if state is None:
                continue
            edges, _, _ = self._flow_block(self.cfg.blocks[index], state)
            for succ, succ_state in edges:
                if succ not in indices:
                    continue
                old = envs[succ]
                joined = join_states(old, succ_state)
                visits[succ] = visits.get(succ, 0) + 1
                if old is not None and visits[succ] > _WIDEN_AFTER:
                    joined = widen_states(old, joined, self.thresholds)
                if joined != old:
                    envs[succ] = joined
                    work.append(succ)

        # Narrowing: decreasing Jacobi passes, accepted only if they
        # re-reach a fixpoint (else the widened post-fixpoint stands).
        snapshot = dict(envs)
        stable = False
        for _ in range(_NARROW_PASSES):
            refreshed = self._jacobi_pass(indices, root, seed, envs)
            if refreshed == envs:
                stable = True
                break
            envs = refreshed
        if not stable:
            final = self._jacobi_pass(indices, root, seed, envs)
            if final != envs:
                envs = snapshot

        # Collection pass over the chosen fixpoint.
        calls: List[Tuple[str, AbsState]] = []
        rets: List[Tuple[Instruction, AbsState]] = []
        for index in sorted(indices):
            state = envs[index]
            if state is None:
                continue
            _, block_calls, block_ret = self._flow_block(
                self.cfg.blocks[index], state)
            calls.extend(block_calls)
            if block_ret is not None:
                rets.append(block_ret)
        summary = self._summarize(function, rets)
        return envs, summary, calls, rets

    def _jacobi_pass(self, indices: Set[int], root: int, seed: AbsState,
                     envs: Dict[int, Optional[AbsState]]
                     ) -> Dict[int, Optional[AbsState]]:
        refreshed: Dict[int, Optional[AbsState]] = \
            {i: None for i in indices}
        refreshed[root] = seed
        for index in sorted(indices):
            state = envs[index]
            if state is None:
                continue
            edges, _, _ = self._flow_block(self.cfg.blocks[index], state)
            for succ, succ_state in edges:
                if succ in indices:
                    refreshed[succ] = join_states(refreshed[succ],
                                                  succ_state)
        return refreshed

    def _summarize(self, function: str,
                   rets: List[Tuple[Instruction, AbsState]]
                   ) -> FunctionSummary:
        touches = self._touches_stack(function)
        if not rets:
            return FunctionSummary(preserved=frozenset(), returns={},
                                   may_return=False,
                                   may_touch_stack=touches)
        preserved = set(range(1, Register.TOTAL))
        returns: Dict[int, AbsVal] = {}
        for _, state in rets:
            for reg in list(preserved):
                if state.reg(reg).entry_of != reg:
                    preserved.discard(reg)
        for reg in range(1, Register.TOTAL):
            if reg in preserved:
                continue
            joined = TOP
            first = True
            for _, state in rets:
                value = state.reg(reg).drop_tags()
                joined = value if first else joined.join(value)
                first = False
            if not joined.is_top_value:
                returns[reg] = joined
        return FunctionSummary(preserved=frozenset(preserved),
                               returns=returns, may_return=True,
                               may_touch_stack=touches)

    def _touches_stack(self, function: str) -> bool:
        """Does *function* (transitively) store anywhere a caller frame
        slot could alias?  Syntactic over the call graph: any store at
        all is conservatively assumed to alias."""
        seen: Set[str] = set()
        work = [function]
        while work:
            fn = work.pop()
            if fn in seen:
                continue
            seen.add(fn)
            for index in self.cfg.functions.get(fn, ()):
                for inst in self.cfg.blocks[index].instructions:
                    if inst.is_store:
                        return True
                    if inst.op is Op.JALR and inst.rd not in (None, 0):
                        return True
            work.extend(self._direct_callees(fn))
        return False

    # -- transfer ------------------------------------------------------------

    def step(self, inst: Instruction, state: AbsState,
             record: Optional[AbsintResult] = None,
             function: str = "") -> Optional[AbsState]:
        """Non-control transfer of one instruction (loads/stores/ALU)."""
        operands = tuple(state.reg(src) for src in inst.sources)
        outcome = abstract_evaluate(inst, operands)

        if inst.is_mem:
            assert outcome.eff is not None
            if record is not None:
                self._record_access(record, inst, function, outcome.eff)
            frame = state.frame
            loaded: Optional[AbsVal] = None
            slot = self._frame_slot(outcome.eff)
            if inst.is_store:
                if slot is not None:
                    frame = dict(frame)
                    frame[slot] = state.reg(inst.sources[1]) \
                        if len(inst.sources) > 1 else TOP
                else:
                    frame = {}  # unknown store may clobber any slot
            if inst.is_load:
                if inst.is_store:  # atomic: old memory value
                    loaded = TOP
                elif slot is not None and slot in frame:
                    loaded = frame[slot]
                else:
                    loaded = TOP
            new_state = AbsState(dict(state.regs), frame)
            if inst.rd not in (None, 0) and loaded is not None:
                return new_state.write(inst.rd, loaded)
            if frame is not state.frame:
                return new_state
            return state if not inst.is_store else new_state

        if inst.rd in (None, 0) or outcome.value is None:
            if inst.rd not in (None, 0):
                return state.write(inst.rd, TOP)
            return state
        value = self._tag_value(inst, operands, outcome.value)
        return state.write(inst.rd, value)

    @staticmethod
    def _frame_slot(eff: AbsVal) -> Optional[float]:
        if eff.sp is not None and eff.sp[0] == eff.sp[1]:
            return eff.sp[0]
        return None

    @staticmethod
    def _tag_value(inst: Instruction, operands: Tuple[AbsVal, ...],
                   value: AbsVal) -> AbsVal:
        """Re-attach the relational tags the pure domain transfer
        drops: SP-offset arithmetic and identity copies."""
        op = inst.op
        if op is Op.ADDI and operands:
            src = operands[0]
            if src.sp is not None and not src.maybe_float \
                    and abs(inst.imm) < (1 << 32):
                value = replace(value, sp=(src.sp[0] + inst.imm,
                                           src.sp[1] + inst.imm))
            if inst.imm == 0:
                value = replace(value, entry_of=src.entry_of,
                                sp=src.sp if not src.maybe_float
                                else value.sp)
        elif op in (Op.ADD, Op.SUB) and len(operands) == 2:
            a, b = operands
            shift = None
            if a.sp is not None and b.sp is None and b.finite \
                    and not b.maybe_float:
                shift = (b.lo, b.hi) if op is Op.ADD else (-b.hi, -b.lo)
                base = a
            elif op is Op.ADD and b.sp is not None and a.sp is None \
                    and a.finite and not a.maybe_float:
                shift = (a.lo, a.hi)
                base = b
            else:
                base = a
            if shift is not None and base.sp is not None \
                    and max(abs(base.sp[0] + shift[0]),
                            abs(base.sp[1] + shift[1])) < (1 << 32):
                value = replace(value, sp=(base.sp[0] + shift[0],
                                           base.sp[1] + shift[1]))
        elif op is Op.FMV and operands:
            return operands[0]
        return value

    def _record_access(self, result: AbsintResult, inst: Instruction,
                       function: str, eff: AbsVal) -> None:
        size = _ACCESS_SIZE.get(inst.op, 8)
        access = result.accesses.get(inst.addr)
        if access is None:
            result.accesses[inst.addr] = MemAccess(
                inst.addr, function, inst.op, size,
                inst.is_store, inst.is_load, eff)
        else:
            access.value = access.value.join(eff)

    # -- block flow ----------------------------------------------------------

    def _flow_block(self, block: BasicBlock, entry: AbsState,
                    record: Optional[AbsintResult] = None):
        """Transfer one block.  Returns ``(edges, calls, ret)`` where
        *edges* are ``(successor index, state)`` pairs, *calls* are
        ``(callee function, translated contribution)`` pairs and *ret*
        is the ``(terminator, state)`` return site, if any."""
        state: Optional[AbsState] = entry
        for inst in block.instructions[:-1]:
            assert state is not None
            state = self.step(inst, state, record, block.function)
            if state is None:  # pragma: no cover - defensive
                return [], [], None
        term = block.terminator
        assert state is not None
        edges: List[Tuple[int, AbsState]] = []
        calls: List[Tuple[str, AbsState]] = []

        if term.kind is Kind.HALT:
            return edges, calls, None

        if is_call_like(term):
            after = state
            if term.rd not in (None, 0):
                after = after.write(term.rd, AbsVal.const(term.next_addr))
            callee_name: Optional[str] = None
            if term.kind is Kind.CALL and not term.is_jump:
                callee = self.program.function_of(term.imm)
                if callee is not None and term.imm == callee.lo:
                    callee_name = callee.name
            summary = self._summaries.get(callee_name, WORST_SUMMARY) \
                if callee_name is not None else WORST_SUMMARY
            if callee_name is None and term.kind is Kind.CALL:
                summary = WORST_SUMMARY
            if callee_name is not None:
                if callee_name not in self._summaries:
                    # Optimistic bottom summary: no return yet; the
                    # global rounds grow it monotonically.
                    summary = FunctionSummary()
                calls.append((callee_name, self._translate(after)))
            returned = self._apply_summary(after, summary)
            if returned is not None:
                succ = self.cfg.block_index_of(term.next_addr)
                if succ is not None and succ in block.successors:
                    edges.append((succ, returned))
            return edges, calls, None

        if term.kind is Kind.RETURN:
            return edges, calls, (term, state)

        if term.is_branch:
            operands = tuple(state.reg(src) for src in term.sources)
            outcome = abstract_evaluate(term, operands)
            if record is not None and outcome.verdict is not None \
                    and block.index in self.cfg.reachable:
                record.verdicts[block.index] = outcome.verdict
            for taken in (True, False):
                if outcome.verdict is not None \
                        and outcome.verdict is not taken:
                    continue
                target = term.imm if taken else term.next_addr
                succ = self.cfg.block_index_of(target)
                if succ is None or succ not in block.successors:
                    continue
                refined = refine_branch(term, operands[0], operands[1],
                                        taken)
                if refined is None:
                    continue
                edge_state = state
                for src, value in zip(term.sources, refined):
                    if src != 0:
                        merged = value
                        edge_state = edge_state.write(src, merged)
                edges.append((succ, edge_state))
            return edges, calls, None

        if term.is_jump:
            succ = self.cfg.block_index_of(term.imm)
            if succ is not None and succ in block.successors:
                edges.append((succ, state))
            return edges, calls, None

        # Plain instruction ending a block (next block is a label).
        state = self.step(term, state, record, block.function)
        if state is not None:
            succ = self.cfg.block_index_of(term.next_addr)
            if succ is not None and succ in block.successors:
                edges.append((succ, state))
        return edges, calls, None

    @staticmethod
    def _translate(state: AbsState) -> AbsState:
        """A call-site state as seen from the callee: relational tags
        are caller-relative and do not survive the boundary."""
        regs: Dict[int, AbsVal] = {}
        for reg, value in state.regs.items():
            dropped = value.drop_tags()
            if not dropped.is_top_value:
                regs[reg] = dropped
        return AbsState(regs, {})

    @staticmethod
    def _apply_summary(state: AbsState,
                       summary: FunctionSummary) -> Optional[AbsState]:
        if not summary.may_return:
            return None
        regs: Dict[int, AbsVal] = {}
        for reg in range(1, Register.TOTAL):
            if reg in summary.preserved:
                value = state.reg(reg)
            else:
                value = summary.returns.get(reg, TOP)
            if not value.is_top_value:
                regs[reg] = value
        frame = {} if summary.may_touch_stack else dict(state.frame)
        return AbsState(regs, frame)

    # -- result assembly -----------------------------------------------------

    def _record(self, result: AbsintResult) -> None:
        result.summaries = dict(self._summaries)
        for fn in self._entry_envs:
            if fn not in self.cfg.functions:
                continue
            envs, summary, _, rets = self._analyze_function(fn)
            result.summaries[fn] = summary
            result.return_states[fn] = rets
            result.envs.update(envs)
            for index, state in envs.items():
                if state is None:
                    continue
                self._flow_block(self.cfg.blocks[index], state,
                                 record=result)
            self._loop_bounds(result, fn, envs)

    def _loop_bounds(self, result: AbsintResult, function: str,
                     envs: Dict[int, Optional[AbsState]]) -> None:
        merged: Dict[int, Set[int]] = {}
        back_sources: Dict[int, Set[int]] = {}
        for loop in self.cfg.loops:
            if loop.function != function:
                continue
            merged.setdefault(loop.header, set()).update(loop.body)
            back_sources.setdefault(loop.header, set()).add(
                loop.back_edge[0])
        if not merged:
            return
        dom = self.cfg.dominators(function)
        for header, body in merged.items():
            state = envs.get(header)
            if state is None:
                continue
            bound = self._counter_bound(function, header, body,
                                        back_sources[header], dom, state)
            if bound is not None:
                result.trip_bounds[(function, header)] = bound

    def _counter_bound(self, function: str, header: int, body: Set[int],
                       back_sources: Set[int], dom, state: AbsState
                       ) -> Optional[int]:
        """Bound header visits via a monotone counter: a register with
        exactly one in-loop writer ``addi r, r, c`` (``c != 0``) that
        dominates every back edge, whose value at the header is a
        finite integer interval: each full iteration moves it at least
        ``|c|``, so visits cannot exceed ``width / |c| + 1``."""
        writers: Dict[int, List[Tuple[int, Instruction]]] = {}
        for index in body:
            for inst in self.cfg.blocks[index].instructions:
                if inst.rd not in (None, 0):
                    writers.setdefault(inst.rd, []).append((index, inst))
        best: Optional[int] = None
        for reg, sites in writers.items():
            if len(sites) != 1:
                continue
            block_index, inst = sites[0]
            if inst.op is not Op.ADDI or inst.sources != (reg,) \
                    or not inst.imm:
                continue
            if any(block_index not in dom.get(src, set())
                   for src in back_sources):
                continue
            value = state.reg(reg)
            if value.maybe_float or not value.finite:
                continue
            trips = int((value.hi - value.lo) // abs(inst.imm)) + 1
            best = trips if best is None else min(best, trips)
        return best

    def _degrade(self, result: AbsintResult) -> None:
        """Produce the trivially sound TOP result: every reachable
        block gets a TOP entry state and accesses are recomputed from
        it, so no rule can claim anything a concrete run could break."""
        result.degraded = True
        result.envs = {}
        result.verdicts = {}
        result.accesses = {}
        result.trip_bounds = {}
        result.return_states = {}
        result.summaries = {fn: WORST_SUMMARY
                            for fn in self.cfg.functions}
        self._summaries = {fn: WORST_SUMMARY
                           for fn in self.cfg.functions}
        top = AbsState()
        for block in self.cfg.blocks:
            result.envs[block.index] = top
            self._flow_block(block, top, record=result)
        result.verdicts = {}


def analyze_program(program: Program, cfg: ControlFlowGraph,
                    regions: Optional[Iterable[Tuple[int, int]]] = None
                    ) -> AbsintResult:
    """Convenience wrapper: build and run the interpreter."""
    return AbstractInterpreter(program, cfg, regions).run()
