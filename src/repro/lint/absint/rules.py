"""Lint rules powered by the abstract interpretation (L014..L019).

Every rule here only claims what the engine *proves*: a finding means
"this holds on every concrete execution", never "this might happen".
On programs whose control flow the engine cannot model (see
``engine.AbstractInterpreter._unsupported_flow``) the result degrades
to TOP and the whole family is silent -- sound, just not informative.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Set, Tuple

from ...cpu.memo import MAX_PERIOD
from ...isa.instruction import Register
from ..context import LintContext, LintRule
from ..diagnostics import Diagnostic, FixHint, Severity
from .abi import CALLEE_SAVED, STACK_POINTER
from .domain import ALL_RESIDUES, AbsVal

#: Bytes covered by one declared data word.
_WORD = 8


def _mapped_intervals(ctx: LintContext) -> List[Tuple[int, int]]:
    """The program's legally-touchable memory as coalesced half-open
    byte ranges: every declared data word plus any premapped regions
    the harness installs before the program runs."""
    raw = [(addr, addr + _WORD) for addr in ctx.program.data]
    raw.extend((int(lo), int(hi)) for lo, hi in ctx.regions if hi > lo)
    raw.sort()
    merged: List[Tuple[int, int]] = []
    for lo, hi in raw:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _may_touch(value: AbsVal, size: int, lo: int, hi: int) -> bool:
    """Could an access of *size* bytes at some address in *value*'s
    concretization overlap the byte range ``[lo, hi)``?"""
    # The access [a, a+size) overlaps iff a in (lo-size, hi).
    window_lo = max(value.lo, float(lo - size + 1))
    window_hi = min(value.hi, float(hi - 1))
    if window_lo > window_hi:
        return False
    start = math.ceil(window_lo)
    end = math.floor(window_hi)
    if start > end:
        return False
    if end - start + 1 >= 8 or value.res == ALL_RESIDUES:
        return True
    return any((x & 7) in value.res for x in range(start, end + 1))


def _fmt_value(value: AbsVal) -> str:
    lo = "-inf" if value.lo == float("-inf") else f"{int(value.lo):#x}"
    hi = "+inf" if value.hi == float("inf") else f"{int(value.hi):#x}"
    text = f"[{lo}, {hi}]"
    if value.res != ALL_RESIDUES:
        text += " = {" + ",".join(str(r) for r in sorted(value.res)) \
                + "} (mod 8)"
    return text


class OutOfBoundsAccessRule(LintRule):
    """Memory accesses proven to never touch mapped memory.

    The guest memory model silently reads zero from (and writes into)
    unmapped addresses, so an access whose *entire* abstract address
    set is disjoint from the data image and the premapped regions is
    almost certainly a base/offset bug -- the load observes garbage
    zeros, the store's value is never seen by anything that matters.
    Stack-relative accesses are exempt (the stack is implicitly
    mapped), and programs with no data image at all are skipped.
    """

    rule_id = "L014"
    name = "oob-access"
    severity = Severity.WARNING
    description = ("memory access provably outside the data image and "
                   "every premapped region on all executions")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        mapped = _mapped_intervals(ctx)
        if not mapped:
            return
        result = ctx.absint()
        for addr in sorted(result.accesses):
            access = result.accesses[addr]
            value = access.value
            if access.sp_relative or not value.res:
                continue
            if any(_may_touch(value, access.size, lo, hi)
                   for lo, hi in mapped):
                continue
            what = "store to" if access.is_store else "load from"
            yield self.diag(
                f"{access.op.value} is always out of bounds: every "
                f"possible {what} address {_fmt_value(value)} misses "
                f"the data image and all premapped regions",
                addr=addr, function=access.function,
                fix_hint="fix the base address or declare the target "
                         "memory in the data image")


class MisalignedAccessRule(LintRule):
    """Accesses whose address congruence proves misalignment.

    8-byte operations must hit addresses ``== 0 (mod 8)``; ``lw``/``sw``
    must hit a 4-byte boundary.  A finding means *no* reachable
    execution can produce an aligned address for this instruction.
    """

    rule_id = "L015"
    name = "misaligned-access"
    severity = Severity.WARNING
    description = ("memory access address is provably misaligned for "
                   "its width on every execution")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        result = ctx.absint()
        for addr in sorted(result.accesses):
            access = result.accesses[addr]
            value = access.value
            if value.res == ALL_RESIDUES or not value.res:
                continue
            allowed = frozenset({0}) if access.size == 8 \
                else frozenset({0, 4})
            if value.res & allowed:
                continue
            residues = ",".join(str(r) for r in sorted(value.res))
            need = ",".join(str(r) for r in sorted(allowed))
            yield self.diag(
                f"{access.op.value} is always misaligned: the address "
                f"is == {{{residues}}} (mod 8) but a {access.size}-byte "
                f"access needs {{{need}}}",
                addr=addr, function=access.function,
                fix_hint="align the base or the offset to the access "
                         "width")


class StackImbalanceRule(LintRule):
    """Functions returning with the stack pointer off its entry value.

    ``x31`` is the stack pointer by repo convention; the engine tracks
    it as an offset from the function-entry value, so a return where
    zero is provably outside the offset interval leaks (or pops) stack
    on every path through that return.
    """

    rule_id = "L016"
    name = "stack-imbalance"
    severity = Severity.WARNING
    description = ("function returns with the stack pointer provably "
                   "offset from its entry value")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        result = ctx.absint()
        for function in sorted(result.return_states):
            for term, state in result.return_states[function]:
                value = state.reg(STACK_POINTER)
                if value.sp is None:
                    continue
                lo, hi = value.sp
                if lo <= 0 <= hi:
                    continue
                span = f"{int(lo)}" if lo == hi \
                    else f"[{int(lo)}, {int(hi)}]"
                yield self.diag(
                    f"{function!r} returns with "
                    f"{Register.name(STACK_POINTER)} offset by {span} "
                    f"bytes from its entry value",
                    addr=term.addr, function=function,
                    fix_hint="pop everything the function pushed "
                             "before returning")


class ClobberedCalleeSavedRule(LintRule):
    """Callee-saved registers not restored before a return.

    ``x28..x30`` are callee-saved by repo convention.  A function that
    writes one directly and reaches a return where the engine cannot
    prove the entry value was restored (through any spill/reload
    sequence -- the frame tracking follows saves through memory)
    clobbers its caller's state.
    """

    rule_id = "L017"
    name = "clobbered-callee-saved"
    severity = Severity.WARNING
    description = ("function writes a callee-saved register and returns "
                   "without restoring its entry value")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        result = ctx.absint()
        for function in sorted(result.return_states):
            written: Set[int] = set()
            for index in ctx.cfg.functions.get(function, ()):
                for inst in ctx.cfg.blocks[index].instructions:
                    if inst.rd in CALLEE_SAVED:
                        written.add(inst.rd)
            if not written:
                continue
            for term, state in result.return_states[function]:
                clobbered = sorted(
                    reg for reg in written
                    if state.reg(reg).entry_of != reg)
                if not clobbered:
                    continue
                names = ", ".join(Register.name(r) for r in clobbered)
                yield self.diag(
                    f"{function!r} returns with callee-saved {names} "
                    f"not restored to the entry value",
                    addr=term.addr, function=function,
                    fix_hint="save the register at entry and restore "
                             "it before returning, or use a "
                             "caller-saved register")


class RangeDeadBranchRule(LintRule):
    """Branches the value ranges decide, beyond constant propagation.

    L011 already covers branches constant propagation proves one-way;
    this rule fires only on the *extra* verdicts the interval/congruence
    domains deliver (e.g. an odd counter compared against zero), so the
    two rules never double-report.
    """

    rule_id = "L018"
    name = "range-dead-branch"
    severity = Severity.WARNING
    description = ("branch outcome is proven by value ranges: one side "
                   "is dead on every execution")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        result = ctx.absint()
        for index in sorted(result.verdicts):
            block = ctx.cfg.blocks[index]
            term = block.terminator
            if index in ctx.constants(block.function).verdicts:
                continue  # const-prop already proves it: L011 territory
            if term.imm == term.next_addr:
                continue  # both ways land on the same block
            verdict = result.verdicts[index]
            way = "taken" if verdict else "fall-through"
            dead = term.next_addr if verdict else term.imm
            yield self.diag(
                f"{term.op.value} is always {way}: value ranges prove "
                f"the path via {dead:#x} dead",
                addr=term.addr, function=block.function,
                fix_hint=FixHint(
                    action="prune",
                    text="remove the dead path or fix the condition",
                    addrs=(term.addr,)))


class UnmemoizableLoopRule(LintRule):
    """Bounded loops too long for the steady-state memoizer.

    The fast path (:mod:`repro.cpu.memo`) can only replay loop bodies
    of up to ``MAX_PERIOD`` committed instructions; a loop the engine
    proves runs many iterations with a longer body will be re-simulated
    in full every iteration.  Informational: the result is correct,
    just slower than it could be.
    """

    rule_id = "L019"
    name = "unmemoizable-loop"
    severity = Severity.INFO
    description = ("statically-bounded loop body exceeds the simulator's "
                   "steady-state memoization window")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        result = ctx.absint()
        bodies: Dict[Tuple[str, int], Set[int]] = {}
        for loop in ctx.cfg.loops:
            bodies.setdefault((loop.function, loop.header),
                              set()).update(loop.body)
        for key in sorted(result.trip_bounds,
                          key=lambda k: (k[0], k[1])):
            function, header = key
            trips = result.trip_bounds[key]
            if trips < 2:
                continue
            body = bodies.get(key, set())
            count = sum(len(ctx.cfg.blocks[i].instructions)
                        for i in body)
            if count <= MAX_PERIOD:
                continue
            header_addr = ctx.cfg.blocks[header].start
            yield self.diag(
                f"loop at {header_addr:#x} runs {trips} iterations of a "
                f"{count}-instruction body, beyond the steady-state "
                f"memoizer's {MAX_PERIOD}-instruction window; every "
                f"iteration is re-simulated in full",
                addr=header_addr, function=function,
                fix_hint="split the body or shrink the loop so the "
                         "fast path can capture its period")


#: The absint rule family, in id order.
ABSINT_RULES: Tuple[LintRule, ...] = (
    OutOfBoundsAccessRule(),
    MisalignedAccessRule(),
    StackImbalanceRule(),
    ClobberedCalleeSavedRule(),
    RangeDeadBranchRule(),
    UnmemoizableLoopRule(),
)

ABSINT_RULE_IDS: Tuple[str, ...] = tuple(r.rule_id for r in ABSINT_RULES)
