"""Abstract domains for the interprocedural abstract interpreter.

One abstract value (:class:`AbsVal`) is a reduced product of three
non-relational components plus two relational tags:

* an **interval** ``[lo, hi]`` over the real line (``±inf`` for
  unbounded sides) containing every value the register can hold;
* an **alignment** component: the set of possible low-3-bit residues
  (congruence mod 8) the value can have *when it is an integer*;
* a **float flag**: whether a non-integer value is possible at all
  (integer ALU results are always integers -- the reference
  interpreter wraps them through ``int()`` -- so most registers are
  provably integral, which is what licenses the ``±1`` endpoint
  refinements on branch edges);
* a **stack tag** ``sp``: the value equals the function's entry stack
  pointer plus an offset in ``[sp[0], sp[1]]``;
* an **entry tag** ``entry_of``: the value provably equals the value
  register ``entry_of`` held at function entry (used to prove
  callee-saved preservation).

The transfer function :func:`abstract_evaluate` is *derived from* the
concrete :func:`repro.isa.semantics.evaluate`: whenever every operand
is a known integer constant it delegates to the concrete semantics and
wraps the result, so the two interpreters cannot drift silently; the
interval/residue arithmetic only takes over for genuinely abstract
operands, and is tested for soundness against the concrete
interpreter (``tests/test_absint.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Sequence, Tuple

from ...isa.instruction import Instruction
from ...isa.opcodes import Op
from ...isa.semantics import INT64_MAX, INT64_MIN, evaluate

NEG_INF = float("-inf")
POS_INF = float("inf")

#: Every possible low-3-bit residue: the alignment component's top.
ALL_RESIDUES: FrozenSet[int] = frozenset(range(8))

#: Offsets larger than this drop the stack tag: a frame that big could
#: wrap 64-bit pointer arithmetic, voiding the relational claim.
_MAX_SP_OFFSET = 1 << 32

#: Ops whose result depends on the fflags CSR, which the abstract
#: interpreter does not model: never delegate these to the concrete
#: semantics.
_CSR_OPS = frozenset({Op.FRFLAGS, Op.FSFLAGS, Op.CSRRW})


@dataclass(frozen=True)
class AbsVal:
    """One abstract register value (see module docstring)."""

    lo: float = NEG_INF
    hi: float = POS_INF
    res: FrozenSet[int] = ALL_RESIDUES
    maybe_float: bool = True
    sp: Optional[Tuple[float, float]] = None
    entry_of: Optional[int] = None

    # -- constructors --------------------------------------------------------

    @staticmethod
    def top() -> "AbsVal":
        return TOP

    @staticmethod
    def const(value: float) -> "AbsVal":
        if isinstance(value, bool):  # pragma: no cover - defensive
            value = int(value)
        if isinstance(value, int):
            return AbsVal(value, value, frozenset({value & 7}), False)
        if isinstance(value, float) and value.is_integer() \
                and abs(value) < float(1 << 62):
            ivalue = int(value)
            return AbsVal(ivalue, ivalue, frozenset({ivalue & 7}), False)
        return AbsVal(value, value, ALL_RESIDUES, True)

    @staticmethod
    def interval(lo: float, hi: float,
                 res: FrozenSet[int] = ALL_RESIDUES,
                 maybe_float: bool = False) -> "AbsVal":
        return AbsVal(lo, hi, res, maybe_float)

    # -- predicates ----------------------------------------------------------

    @property
    def is_singleton_int(self) -> bool:
        return (not self.maybe_float and self.lo == self.hi
                and self.lo not in (NEG_INF, POS_INF))

    @property
    def singleton(self) -> Optional[int]:
        return int(self.lo) if self.is_singleton_int else None

    @property
    def finite(self) -> bool:
        return self.lo != NEG_INF and self.hi != POS_INF

    @property
    def is_top_value(self) -> bool:
        return (self.lo == NEG_INF and self.hi == POS_INF
                and self.res == ALL_RESIDUES and self.maybe_float
                and self.sp is None and self.entry_of is None)

    def contains(self, value: float, *,
                 sp_entry: Optional[int] = None,
                 entry_regs: Optional[Sequence[float]] = None) -> bool:
        """Concretization membership: is *value* a possible value?

        *sp_entry* / *entry_regs* supply the concrete entry state when
        the relational tags should be checked too; without them only
        the non-relational components are tested.
        """
        if not (self.lo <= value <= self.hi):
            return False
        is_int = isinstance(value, int) or \
            (isinstance(value, float) and value.is_integer())
        if not is_int and not self.maybe_float:
            return False
        if is_int and (int(value) & 7) not in self.res:
            return False
        if self.sp is not None and sp_entry is not None:
            off = value - sp_entry
            if not (self.sp[0] <= off <= self.sp[1]):
                return False
        if self.entry_of is not None and entry_regs is not None:
            if value != entry_regs[self.entry_of]:
                return False
        return True

    # -- lattice operations --------------------------------------------------

    def join(self, other: "AbsVal") -> "AbsVal":
        sp = None
        if self.sp is not None and other.sp is not None:
            sp = (min(self.sp[0], other.sp[0]),
                  max(self.sp[1], other.sp[1]))
        entry_of = self.entry_of if self.entry_of == other.entry_of \
            else None
        return AbsVal(min(self.lo, other.lo), max(self.hi, other.hi),
                      self.res | other.res,
                      self.maybe_float or other.maybe_float,
                      sp, entry_of)

    def widen(self, newer: "AbsVal",
              thresholds: Sequence[float]) -> "AbsVal":
        """Widen ``self`` (the older value) against *newer*.

        Growing bounds jump to the nearest enclosing threshold (the
        program's own immediates ``±1``) so loop counters stabilise on
        their real bounds instead of racing to ``±inf``.
        """
        joined = self.join(newer)
        lo, hi = joined.lo, joined.hi
        if joined.lo < self.lo:
            lo = max((t for t in thresholds if t <= joined.lo),
                     default=NEG_INF)
        if joined.hi > self.hi:
            hi = min((t for t in thresholds if t >= joined.hi),
                     default=POS_INF)
        sp = joined.sp
        if sp is not None and self.sp is not None and sp != self.sp:
            slo, shi = sp
            if sp[0] < self.sp[0]:
                slo = max((t for t in thresholds if t <= sp[0]),
                          default=NEG_INF)
            if sp[1] > self.sp[1]:
                shi = min((t for t in thresholds if t >= sp[1]),
                          default=POS_INF)
            sp = (slo, shi)
        return replace(joined, lo=lo, hi=hi, sp=sp)

    def meet_interval(self, lo: float, hi: float) -> Optional["AbsVal"]:
        """Intersect with ``[lo, hi]``; ``None`` when empty."""
        nlo, nhi = max(self.lo, lo), min(self.hi, hi)
        if nlo > nhi:
            return None
        return replace(self, lo=nlo, hi=nhi)

    def drop_tags(self) -> "AbsVal":
        if self.sp is None and self.entry_of is None:
            return self
        return replace(self, sp=None, entry_of=None)


TOP = AbsVal()
_BOOL = AbsVal(0, 1, frozenset({0, 1}), False)


# -- interval helpers --------------------------------------------------------

def _wrap(lo: float, hi: float, res: FrozenSet[int],
          maybe_float: bool = False) -> AbsVal:
    """Clamp a computed interval to representable 64-bit results.

    The concrete semantics wrap through ``_to_signed``; an interval
    that may overflow tells us nothing about the wrapped value, but
    residues mod 8 survive wrapping (2**64 is a multiple of 8).
    """
    if lo != lo or hi != hi:  # nan from inf arithmetic
        return AbsVal(NEG_INF, POS_INF, res, maybe_float)
    if lo < INT64_MIN or hi > INT64_MAX:
        return AbsVal(NEG_INF, POS_INF, res, maybe_float)
    return AbsVal(lo, hi, res, maybe_float)


def _eff(val: AbsVal) -> Tuple[float, float, FrozenSet[int]]:
    """Effective integer bounds/residues of one operand.

    The concrete semantics apply ``int()`` to integer-ALU operands,
    which truncates toward zero: a possibly-float operand's integer
    image stays within one unit of its interval, and its residue
    component carries no information.
    """
    if val.maybe_float:
        lo = val.lo if val.lo == NEG_INF else val.lo - 1
        hi = val.hi if val.hi == POS_INF else val.hi + 1
        return lo, hi, ALL_RESIDUES
    return val.lo, val.hi, val.res


def _res_map2(fn, ra: FrozenSet[int], rb: FrozenSet[int]) -> FrozenSet[int]:
    return frozenset(fn(a, b) & 7 for a in ra for b in rb)


def _add(a: AbsVal, b: AbsVal) -> AbsVal:
    alo, ahi, ares = _eff(a)
    blo, bhi, bres = _eff(b)
    return _wrap(alo + blo, ahi + bhi,
                 _res_map2(lambda x, y: x + y, ares, bres))


def _sub(a: AbsVal, b: AbsVal) -> AbsVal:
    alo, ahi, ares = _eff(a)
    blo, bhi, bres = _eff(b)
    return _wrap(alo - bhi, ahi - blo,
                 _res_map2(lambda x, y: x - y, ares, bres))


def _mul(a: AbsVal, b: AbsVal) -> AbsVal:
    alo, ahi, ares = _eff(a)
    blo, bhi, bres = _eff(b)
    res = _res_map2(lambda x, y: x * y, ares, bres)
    if NEG_INF in (alo, blo) or POS_INF in (ahi, bhi):
        return AbsVal(NEG_INF, POS_INF, res, False)
    corners = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
    return _wrap(min(corners), max(corners), res)


def _bitand(a: AbsVal, b: AbsVal) -> AbsVal:
    alo, ahi, ares = _eff(a)
    blo, bhi, bres = _eff(b)
    res = _res_map2(lambda x, y: x & y, ares, bres)
    # x & m for a non-negative m is in [0, m]; take the tighter side.
    bound = POS_INF
    if alo >= 0:
        bound = min(bound, ahi)
    if blo >= 0:
        bound = min(bound, bhi)
    if bound == POS_INF:
        return AbsVal(NEG_INF, POS_INF, res, False)
    return _wrap(0, bound, res)


def _bitor(a: AbsVal, b: AbsVal, xor: bool = False) -> AbsVal:
    alo, ahi, ares = _eff(a)
    blo, bhi, bres = _eff(b)
    res = _res_map2((lambda x, y: x ^ y) if xor else (lambda x, y: x | y),
                    ares, bres)
    if alo >= 0 and blo >= 0 and ahi != POS_INF and bhi != POS_INF:
        # or/xor cannot set a bit above the highest operand bit.
        bound = (1 << max(int(ahi), int(bhi), 1).bit_length()) - 1
        return _wrap(0, bound, res)
    return AbsVal(NEG_INF, POS_INF, res, False)


def _shl(a: AbsVal, b: AbsVal) -> AbsVal:
    alo, ahi, ares = _eff(a)
    k = b.singleton
    if k is None:
        return AbsVal(NEG_INF, POS_INF, ALL_RESIDUES, False)
    k &= 63
    res = frozenset((r << k) & 7 for r in ares)
    if alo == NEG_INF or ahi == POS_INF:
        return AbsVal(NEG_INF, POS_INF, res, False)
    return _wrap(alo * (1 << k), ahi * (1 << k), res)


def _shr(a: AbsVal, b: AbsVal) -> AbsVal:
    alo, ahi, _ = _eff(a)
    k = b.singleton
    if k is not None:
        k &= 63
        if alo >= 0 and ahi != POS_INF:
            return _wrap(int(alo) >> k, int(ahi) >> k, ALL_RESIDUES)
        if k >= 1:
            return _wrap(0, (1 << (64 - k)) - 1, ALL_RESIDUES)
        return AbsVal(NEG_INF, POS_INF, ALL_RESIDUES, False)
    if alo >= 0 and ahi != POS_INF:
        # Unknown shift of a non-negative value only shrinks it.
        return _wrap(0, int(ahi), ALL_RESIDUES)
    return AbsVal(NEG_INF, POS_INF, ALL_RESIDUES, False)


def _div(a: AbsVal, b: AbsVal) -> AbsVal:
    alo, ahi, _ = _eff(a)
    blo, bhi, _ = _eff(b)
    if alo >= 0 and blo >= 1 and ahi != POS_INF:
        hi = int(ahi) // max(int(blo), 1)
        lo = 0
        if bhi != POS_INF and int(bhi) >= 1:
            lo = int(alo) // int(bhi)
        return _wrap(lo, hi, ALL_RESIDUES)
    if alo >= 0 and blo >= 0 and ahi != POS_INF:
        # The divisor may be zero: DIV by zero yields -1.
        return _wrap(-1, int(ahi), ALL_RESIDUES)
    return AbsVal(NEG_INF, POS_INF, ALL_RESIDUES, False)


def _rem(a: AbsVal, b: AbsVal) -> AbsVal:
    alo, ahi, _ = _eff(a)
    blo, bhi, _ = _eff(b)
    if alo >= 0 and blo >= 1 and bhi != POS_INF:
        return _wrap(0, int(bhi) - 1, ALL_RESIDUES)
    if alo >= 0 and blo >= 0 and bhi != POS_INF and ahi != POS_INF:
        # rem by zero yields the dividend.
        return _wrap(0, max(int(bhi) - 1, int(ahi), 0), ALL_RESIDUES)
    return AbsVal(NEG_INF, POS_INF, ALL_RESIDUES, False)


def _compare_lt(a: AbsVal, b: AbsVal) -> Optional[bool]:
    """Decide ``a < b`` from raw intervals; ``None`` when unknown."""
    if a.hi < b.lo:
        return True
    if a.lo >= b.hi:
        return False
    return None


def _compare_eq(a: AbsVal, b: AbsVal) -> Optional[bool]:
    if a.hi < b.lo or b.hi < a.lo:
        return False
    if not a.maybe_float and not b.maybe_float and not (a.res & b.res):
        return False
    sa, sb = a.singleton, b.singleton
    if sa is not None and sa == sb:
        return True
    if a.entry_of is not None and a.entry_of == b.entry_of:
        return True
    return None


_INT_BINOPS = {
    Op.ADD: _add, Op.SUB: _sub, Op.MUL: _mul,
    Op.AND: _bitand, Op.OR: _bitor,
    Op.XOR: lambda a, b: _bitor(a, b, xor=True),
    Op.SLL: _shl, Op.SRL: _shr,
    Op.DIV: _div, Op.REM: _rem,
}

_IMM_BINOPS = {
    Op.ADDI: _add, Op.ANDI: _bitand, Op.ORI: _bitor,
    Op.XORI: lambda a, b: _bitor(a, b, xor=True),
    Op.SLLI: _shl, Op.SRLI: _shr,
}

_FP_VALUE_OPS = frozenset({
    Op.FADD, Op.FSUB, Op.FMUL, Op.FMIN, Op.FMAX, Op.FMADD,
    Op.FDIV, Op.FSQRT, Op.FCVT_D_W,
})

_CMP01_OPS = frozenset({Op.FEQ, Op.FLT, Op.FLE})


@dataclass(frozen=True)
class AbsExec:
    """Abstract counterpart of :class:`repro.isa.semantics.ExecResult`."""

    #: Destination-register value (when the op writes one).
    value: Optional[AbsVal] = None
    #: Effective-address abstraction for memory ops.
    eff: Optional[AbsVal] = None
    #: Decided branch outcome; ``None`` when both edges are feasible.
    verdict: Optional[bool] = None


def abstract_evaluate(inst: Instruction,
                      operands: Tuple[AbsVal, ...]) -> AbsExec:
    """Abstractly execute *inst*: the sound counterpart of
    :func:`repro.isa.semantics.evaluate` over :class:`AbsVal`.

    When every operand is a known integer constant the concrete
    semantics are consulted directly (the anti-drift coupling); the
    interval/residue arithmetic handles everything else.
    """
    op = inst.op

    # Constant folding through the concrete semantics.
    if op not in _CSR_OPS and not inst.is_mem \
            and all(v.is_singleton_int for v in operands):
        result = evaluate(inst, tuple(v.singleton for v in operands))
        value = None
        if result.value is not None:
            value = AbsVal.const(result.value)
        if inst.is_branch:
            return AbsExec(verdict=result.taken)
        if inst.is_control:
            return AbsExec(value=value)
        return AbsExec(value=value)

    if op in _INT_BINOPS:
        return AbsExec(value=_INT_BINOPS[op](operands[0], operands[1]))
    if op in _IMM_BINOPS:
        return AbsExec(value=_IMM_BINOPS[op](
            operands[0], AbsVal.const(inst.imm)))
    if op in (Op.SLT, Op.SLTI):
        other = operands[1] if op is Op.SLT else AbsVal.const(inst.imm)
        decided = _compare_lt(operands[0], other)
        if decided is None:
            return AbsExec(value=_BOOL)
        return AbsExec(value=AbsVal.const(int(decided)))
    if op is Op.LUI:
        return AbsExec(value=AbsVal.const(inst.imm << 12))

    if op in _CMP01_OPS:
        return AbsExec(value=_BOOL)
    if op is Op.FCVT_W_D:
        src = operands[0]
        lo = src.lo if src.lo == NEG_INF else src.lo - 1
        hi = src.hi if src.hi == POS_INF else src.hi + 1
        return AbsExec(value=_wrap(lo, hi, ALL_RESIDUES))
    if op is Op.FMV:
        return AbsExec(value=operands[0])
    if op in _FP_VALUE_OPS:
        return AbsExec(value=TOP)

    if inst.is_mem:
        base = operands[0]
        eff = _add(base.drop_tags(), AbsVal.const(inst.imm))
        if base.sp is not None:
            eff = replace(eff, sp=(base.sp[0] + inst.imm,
                                   base.sp[1] + inst.imm))
        return AbsExec(eff=eff, value=TOP if inst.rd else None)

    if inst.is_branch:
        a, b = operands
        if op is Op.BEQ:
            return AbsExec(verdict=_compare_eq(a, b))
        if op is Op.BNE:
            eq = _compare_eq(a, b)
            return AbsExec(verdict=None if eq is None else not eq)
        if op is Op.BLT:
            return AbsExec(verdict=_compare_lt(a, b))
        lt = _compare_lt(a, b)  # BGE
        return AbsExec(verdict=None if lt is None else not lt)
    if op is Op.JAL:
        return AbsExec(value=AbsVal.const(inst.next_addr))
    if op is Op.JALR:
        return AbsExec(value=AbsVal.const(inst.next_addr))

    # CSR reads, nop/halt/fence/sret/ecall: no information.
    if inst.rd is not None and inst.rd != 0:
        return AbsExec(value=TOP)
    return AbsExec()


# -- branch-edge refinement --------------------------------------------------

def _exclude_endpoint(val: AbsVal, point: int) -> Optional[AbsVal]:
    """Refine ``val`` knowing ``val != point`` (integers only)."""
    if val.maybe_float:
        return val
    lo, hi = val.lo, val.hi
    if lo == hi == point:
        return None
    if lo == point:
        lo += 1
    if hi == point:
        hi -= 1
    if lo > hi:
        return None
    return replace(val, lo=lo, hi=hi)


def refine_branch(inst: Instruction, a: AbsVal, b: AbsVal,
                  taken: bool) -> Optional[Tuple[AbsVal, AbsVal]]:
    """Refine branch operands along the *taken*/fall-through edge.

    Returns refined ``(a, b)`` or ``None`` when the edge is infeasible
    under the current abstraction.
    """
    op = inst.op
    relation: str
    if op is Op.BEQ:
        relation = "eq" if taken else "ne"
    elif op is Op.BNE:
        relation = "ne" if taken else "eq"
    elif op is Op.BLT:
        relation = "lt" if taken else "ge"
    elif op is Op.BGE:
        relation = "ge" if taken else "lt"
    else:
        return a, b

    if relation == "eq":
        na = a.meet_interval(b.lo, b.hi)
        nb = b.meet_interval(a.lo, a.hi)
        if na is None or nb is None:
            return None
        res = a.res & b.res
        mf = a.maybe_float and b.maybe_float
        if not res and not mf:
            return None  # no integer residue fits and floats ruled out
        return (replace(na, res=res, maybe_float=mf),
                replace(nb, res=res, maybe_float=mf))
    if relation == "ne":
        na, nb = a, b
        point = b.singleton
        if point is not None:
            refined = _exclude_endpoint(a, point)
            if refined is None:
                return None
            na = refined
        point = a.singleton
        if point is not None:
            refined = _exclude_endpoint(b, point)
            if refined is None:
                return None
            nb = refined
        return na, nb

    ints = not a.maybe_float and not b.maybe_float
    if relation == "lt":  # a < b
        a_cap = b.hi - 1 if ints and b.hi != POS_INF else b.hi
        b_floor = a.lo + 1 if ints and a.lo != NEG_INF else a.lo
        na = a.meet_interval(NEG_INF, a_cap)
        nb = b.meet_interval(b_floor, POS_INF)
        if na is None or nb is None:
            return None
        return na, nb
    # ge: a >= b
    na = a.meet_interval(b.lo, POS_INF)
    nb = b.meet_interval(NEG_INF, a.hi)
    if na is None or nb is None:
        return None
    return na, nb
