"""Common sample and cycle-category types shared by all profilers."""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import Kind
from ..isa.program import Program


class Category(enum.Enum):
    """Cycle categories used for cycle stacks (Section 3.1 / Figure 7)."""

    EXECUTION = "Execution"
    ALU_STALL = "ALU stall"
    LOAD_STALL = "Load stall"
    STORE_STALL = "Store stall"
    FRONTEND = "Front-end"
    MISPREDICT = "Mispredict"
    MISC_FLUSH = "Misc. flush"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FlushKind(enum.Enum):
    """Fine-grained breakdown of pipeline-flush time.

    The paper groups these as "Misc. flush"/"Mispredict" in Figure 7 but
    notes that "TIP can easily support more fine-grained categories if
    necessary"; Oracle tracks them (the hardware TIP reports its 3-bit
    OIR flag, which cannot split page faults from ordering replays).
    """

    MISPREDICT = "mispredicted branch"
    CSR = "CSR/serializing commit"
    EXCEPTION = "precise exception"
    ORDERING = "memory-ordering replay"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Attribution of one cycle or sample: ``[(addr, fraction), ...]`` with the
#: fractions summing to 1.
Attribution = List[Tuple[int, float]]


class Sample:
    """One collected sample.

    ``interval`` is the number of cycles this sample represents (the time
    since the previous sample), ``weights`` the attribution produced by
    the profiler, and ``category`` the profiler's classification of the
    sampled cycle (``None`` for profilers that cannot classify).
    """

    __slots__ = ("cycle", "interval", "weights", "category")

    def __init__(self, cycle: int, interval: int, weights: Attribution,
                 category: Optional[Category] = None):
        self.cycle = cycle
        self.interval = interval
        self.weights = weights
        self.category = category

    def __repr__(self) -> str:
        return (f"<sample @{self.cycle} x{self.interval} "
                f"{[(hex(a), round(w, 3)) for a, w in self.weights]}>")


def stall_category(program: Program, addr: int) -> Category:
    """Classify a commit stall by the stalling instruction's type.

    This mirrors the paper's post-processing: "TIP uses the application
    binary to determine the instruction type and thereby understand if the
    oldest instruction is an ALU-instruction, a load, or a store."
    """
    inst = program.fetch(addr)
    if inst is None:
        return Category.ALU_STALL
    if inst.is_load:
        return Category.LOAD_STALL
    if inst.is_store:
        return Category.STORE_STALL
    return Category.ALU_STALL
