"""The Oracle profiler: the golden reference (Section 2.2).

Oracle attributes *every* clock cycle to the instruction(s) whose latency
the processor exposes in that cycle, using the four commit-stage states of
Figure 3:

* **Computing** -- one or more instructions commit: attribute ``1/n``
  cycles to each of the ``n`` committing instructions.
* **Stalled** -- the ROB is non-empty but nothing commits: attribute the
  cycle to the instruction at the head of the ROB.
* **Flushed** -- the ROB is empty because of misspeculation or an
  exception: attribute the cycle to the instruction that emptied the ROB
  (mispredicted branch, flushing CSR, or excepting instruction).
* **Drained** -- the ROB is empty because the front-end is not supplying
  instructions: attribute the cycle to the first instruction that enters
  the ROB after the stall (resolved retroactively).

Besides the full per-instruction time profile and per-category cycle
stacks (Figure 7/13), Oracle can *watch* sampling schedules: for each
sample point it records both the golden attribution of the sampled cycle
and the golden attribution of the whole interval the sample represents.
The error metric (Section 4) judges every practical profiler's sample
against the latter: a sample stands for the entire period since the
previous sample, so even a profiler that matches Oracle cycle-for-cycle
retains *unsystematic* error that shrinks as the sampling frequency
rises.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..cpu.trace import CycleRecord, TraceObserver
from ..isa.program import Program
from .samples import Attribution, Category, FlushKind, stall_category
from .sampling import SampleSchedule

#: OIR flag values (mirrors TIP's 3-bit OIR flags).
_FLAG_NONE = 0
_FLAG_MISPREDICT = 1
_FLAG_FLUSH = 2
_FLAG_EXCEPTION = 3

#: Trace wire-format flag bits (mirrors ``repro.cpu.tracefile``), used
#: by the vectorized block loop to read optional columns in place.
_WIRE_EMPTY = 1 << 0
_WIRE_EXC = 1 << 1
_WIRE_ORD = 1 << 2
_WIRE_HEAD = 1 << 4
#: flags byte -> number of optional u64s per record (wire order).
_WIRE_NOPT = tuple(bin(f & 0b11010).count("1") for f in range(256))

#: Repeated ``+= 1.0`` equals one ``+= count`` only below 2**53.
_EXACT_LIMIT = float(1 << 53)

#: Key identifying a sampling schedule: (period, mode, seed).
ScheduleKey = Tuple[int, str, int]

#: ChunkCarry flush-kind code (KIND_*) -> FlushKind.
_KIND_TO_FLUSH: Dict[int, Optional[FlushKind]] = {
    0: None, 1: FlushKind.MISPREDICT, 2: FlushKind.CSR,
    3: FlushKind.EXCEPTION, 4: FlushKind.ORDERING,
}


def schedule_key(schedule: SampleSchedule) -> ScheduleKey:
    return (schedule.period, schedule.mode, schedule.seed)


class _IntervalAccumulator:
    """Accumulates golden attribution between consecutive sample points."""

    __slots__ = ("schedule", "current", "intervals")

    def __init__(self, schedule: SampleSchedule):
        self.schedule = schedule
        self.current: Dict[int, float] = {}
        #: sample cycle -> (addr -> golden cycles within the interval).
        self.intervals: Dict[int, Dict[int, float]] = {}

    def add(self, cycle: int, weights: Attribution) -> None:
        current = self.current
        for addr, weight in weights:
            current[addr] = current.get(addr, 0.0) + weight
        if self.schedule.is_sample(cycle):
            self.intervals[cycle] = current
            self.current = {}


class OracleReport:
    """Everything Oracle learned about a run."""

    def __init__(self):
        #: addr -> attributed cycles.
        self.profile: Dict[int, float] = {}
        #: (addr, category) -> attributed cycles.
        self.categorized: Dict[Tuple[int, Category], float] = {}
        #: category -> total cycles.
        self.category_totals: Dict[Category, float] = {}
        #: fine-grained flush breakdown (paper: "more fine-grained
        #: categories"): FlushKind -> attributed cycles.
        self.flush_breakdown: Dict[FlushKind, float] = {}
        #: sample cycle -> golden attribution of that exact cycle.
        self.watched: Dict[int, Tuple[Attribution, Category]] = {}
        #: schedule key -> sample cycle -> golden interval attribution.
        self.intervals: Dict[ScheduleKey, Dict[int, Dict[int, float]]] = {}
        self.total_cycles = 0

    def add(self, addr: int, weight: float, category: Category,
            flush_kind: Optional[FlushKind] = None) -> None:
        self.profile[addr] = self.profile.get(addr, 0.0) + weight
        key = (addr, category)
        self.categorized[key] = self.categorized.get(key, 0.0) + weight
        self.category_totals[category] = \
            self.category_totals.get(category, 0.0) + weight
        if flush_kind is not None:
            self.flush_breakdown[flush_kind] = \
                self.flush_breakdown.get(flush_kind, 0.0) + weight

    def interval_for(self, key: ScheduleKey,
                     cycle: int) -> Optional[Dict[int, float]]:
        per_cycle = self.intervals.get(key)
        if per_cycle is None:
            return None
        return per_cycle.get(cycle)

    def normalized_profile(self) -> Dict[int, float]:
        """Profile as fraction of total attributed time."""
        total = sum(self.profile.values())
        if not total:
            return {}
        return {addr: t / total for addr, t in self.profile.items()}


#: Dense small-int codes for the category/flush enums -- the fast path
#: accumulates against these instead of hashing enum members per weight.
_CATEGORIES = tuple(Category)
_CAT_CODE = {category: code for code, category in enumerate(_CATEGORIES)}
_FLUSH_KINDS = tuple(FlushKind)
_FLUSH_CODE = {kind: code for code, kind in enumerate(_FLUSH_KINDS)}
#: Categorized-scratch keys pack ``slot * _CAT_STRIDE + cat_code``.
_CAT_STRIDE = len(_CATEGORIES)


class _FastAccumulator:
    """Interned, list-backed attribution scratch (block fast path).

    ``report.add`` pays enum hashing, a float box and a ``get`` default
    per table per weight.  The fast path interns each address (and each
    ``(addr, category)`` pair, packed as one int) into a slot index
    once and accumulates into plain float lists, converting back into
    the report's dict tables in one pass at flush time.  Per-slot
    accumulation happens in the same cycle order as ``report.add``
    would apply it and each slot folds into an absent (0.0) dict entry,
    so flushed totals are bit-identical to the cycle engine's.
    """

    __slots__ = ("profile_slot", "profile_addr", "profile_acc",
                 "cat_slot", "cat_code", "cat_acc", "totals", "flush")

    def __init__(self):
        self.profile_slot: Dict[int, int] = {}
        self.profile_addr: List[int] = []
        self.profile_acc: List[float] = []
        self.cat_slot: Dict[int, int] = {}
        self.cat_code: List[int] = []
        self.cat_acc: List[float] = []
        self.totals = [0.0] * len(_CATEGORIES)
        self.flush = [0.0] * len(_FLUSH_KINDS)

    def add(self, addr: int, weight: float, cat_code: int,
            flush_code: int = -1) -> None:
        slot = self.profile_slot.get(addr)
        if slot is None:
            slot = self.profile_slot[addr] = len(self.profile_acc)
            self.profile_addr.append(addr)
            self.profile_acc.append(0.0)
        self.profile_acc[slot] += weight
        key = slot * _CAT_STRIDE + cat_code
        cslot = self.cat_slot.get(key)
        if cslot is None:
            cslot = self.cat_slot[key] = len(self.cat_acc)
            self.cat_code.append(key)
            self.cat_acc.append(0.0)
        self.cat_acc[cslot] += weight
        self.totals[cat_code] += weight
        if flush_code >= 0:
            self.flush[flush_code] += weight

    def add_run(self, addr: int, count: int, cat_code: int,
                flush_code: int = -1) -> None:
        """Accumulate *count* unit weights in one step when provably
        exact.

        A batched ``+= count`` is bit-identical to *count* repeated
        ``+= 1.0`` exactly when every touched cell holds an integral
        float and the result stays below 2**53 (integers are closed
        under float addition in that range).  A cell can be fractional
        when its address also collected ``1/n`` EXECUTION shares; the
        run then falls back to the per-unit loop.
        """
        slot = self.profile_slot.get(addr)
        if slot is None:
            slot = self.profile_slot[addr] = len(self.profile_acc)
            self.profile_addr.append(addr)
            self.profile_acc.append(0.0)
        key = slot * _CAT_STRIDE + cat_code
        cslot = self.cat_slot.get(key)
        if cslot is None:
            cslot = self.cat_slot[key] = len(self.cat_acc)
            self.cat_code.append(key)
            self.cat_acc.append(0.0)
        p = self.profile_acc[slot]
        c = self.cat_acc[cslot]
        t = self.totals[cat_code]
        f = self.flush[flush_code] if flush_code >= 0 else 0.0
        limit = _EXACT_LIMIT - count
        if p.is_integer() and c.is_integer() and t.is_integer() \
                and f.is_integer() and p <= limit and c <= limit \
                and t <= limit and f <= limit:
            fcount = float(count)
            self.profile_acc[slot] = p + fcount
            self.cat_acc[cslot] = c + fcount
            self.totals[cat_code] = t + fcount
            if flush_code >= 0:
                self.flush[flush_code] = f + fcount
            return
        add = self.add
        for _ in range(count):
            add(addr, 1.0, cat_code, flush_code)

    def flush_into(self, report: "OracleReport") -> None:
        """Fold the scratch into *report* and zero it for reuse."""
        profile = report.profile
        addrs = self.profile_addr
        acc = self.profile_acc
        for slot, addr in enumerate(addrs):
            profile[addr] = profile.get(addr, 0.0) + acc[slot]
            acc[slot] = 0.0
        categorized = report.categorized
        cat_acc = self.cat_acc
        for cslot, packed in enumerate(self.cat_code):
            key = (addrs[packed // _CAT_STRIDE],
                   _CATEGORIES[packed % _CAT_STRIDE])
            categorized[key] = categorized.get(key, 0.0) + cat_acc[cslot]
            cat_acc[cslot] = 0.0
        totals = report.category_totals
        for code, value in enumerate(self.totals):
            if value:
                category = _CATEGORIES[code]
                totals[category] = totals.get(category, 0.0) + value
                self.totals[code] = 0.0
        breakdown = report.flush_breakdown
        for code, value in enumerate(self.flush):
            if value:
                kind = _FLUSH_KINDS[code]
                breakdown[kind] = breakdown.get(kind, 0.0) + value
                self.flush[code] = 0.0


class OracleProfiler(TraceObserver):
    """Cycle-exact time-proportional attribution over the commit trace.

    Attribution is emitted strictly in cycle order (front-end drains delay
    emission until the drain resolves, but nothing can be attributed in
    between), which lets the interval accumulators see a clean stream.
    """

    def __init__(self, program: Program,
                 watch_cycles: Optional[Iterable[int]] = None,
                 watch_schedules: Optional[List[SampleSchedule]] = None):
        self.program = program
        self.report = OracleReport()
        self._watch = set(watch_cycles or ())
        self._watch_markers = []  # schedules marking per-cycle watches
        self._accumulators: List[_IntervalAccumulator] = []
        for schedule in watch_schedules or ():
            self._watch_markers.append(schedule.clone())
            accumulator = _IntervalAccumulator(schedule.clone())
            self._accumulators.append(accumulator)
            self.report.intervals[schedule_key(schedule)] = \
                accumulator.intervals
        # OIR mirror: address + flags of the most recent committing or
        # excepting instruction.
        self._oir_addr: Optional[int] = None
        self._oir_flag = _FLAG_NONE
        self._oir_kind: Optional[FlushKind] = None
        # Cycles waiting for the end of a front-end drain.
        self._pending_drain: List[int] = []
        # The block fast path bypasses watch bookkeeping entirely, so
        # it is only safe when no watches were requested.
        self._fast: Optional[_FastAccumulator] = None
        if not self._watch and not self._accumulators:
            self._fast = _FastAccumulator()
        # addr -> category code, memoizing stall_category lookups.
        self._stall_codes: Dict[int, int] = {}
        # addr -> Category, the watch-mode twin of ``_stall_codes``.
        self._stall_cats: Dict[int, Category] = {}

    # -- trace consumption ---------------------------------------------------------

    def on_cycle(self, record: CycleRecord) -> None:
        cycle = record.cycle
        for marker in self._watch_markers:
            if marker.is_sample(cycle):
                self._watch.add(cycle)

        # A drain ends when the first instruction enters the ROB.
        if self._pending_drain and record.dispatched:
            self._resolve_drain(record.dispatched[0])

        if record.exception is not None:
            # The core is about to trigger an exception: the empty-ROB
            # cycles that follow belong to the excepting instruction.
            self._oir_addr = record.exception
            self._oir_flag = _FLAG_EXCEPTION
            self._oir_kind = (FlushKind.ORDERING
                              if record.exception_is_ordering
                              else FlushKind.EXCEPTION)
            self._emit(cycle, [(record.exception, 1.0)],
                       Category.MISC_FLUSH, self._oir_kind)
            return

        if record.committed:
            share = 1.0 / len(record.committed)
            weights = [(c.addr, share) for c in record.committed]
            self._emit(cycle, weights, Category.EXECUTION)
            youngest = record.committed[-1]
            self._oir_addr = youngest.addr
            if youngest.mispredicted:
                self._oir_flag = _FLAG_MISPREDICT
                self._oir_kind = FlushKind.MISPREDICT
            elif youngest.flushes:
                self._oir_flag = _FLAG_FLUSH
                self._oir_kind = FlushKind.CSR
            else:
                self._oir_flag = _FLAG_NONE
                self._oir_kind = None
            return

        if not record.rob_empty:
            category = stall_category(self.program, record.rob_head)
            self._emit(cycle, [(record.rob_head, 1.0)], category)
            return

        # Empty ROB: flushed if the OIR carries a flush reason, else a
        # front-end drain resolved at the next dispatch.
        if self._oir_flag == _FLAG_MISPREDICT:
            self._emit(cycle, [(self._oir_addr, 1.0)],
                       Category.MISPREDICT, self._oir_kind)
        elif self._oir_flag in (_FLAG_FLUSH, _FLAG_EXCEPTION):
            self._emit(cycle, [(self._oir_addr, 1.0)],
                       Category.MISC_FLUSH, self._oir_kind)
        else:
            self._pending_drain.append(cycle)

    def on_stall_run(self, record: CycleRecord, count: int) -> None:
        """Batched attribution of *count* identical stall cycles.

        The classification of a stall record (constant head-of-ROB
        stall, flush penalty, or front-end drain) cannot change within
        the run -- the OIR mirror only moves on commits and exceptions,
        which a stall record has none of -- so it is computed once.
        Weights still accumulate cycle by cycle in run order, keeping
        floating-point results bit-identical to single-stepping.
        """
        if record.committed or record.exception is not None \
                or record.dispatched:
            # Not a pure stall record; take the per-cycle default.
            TraceObserver.on_stall_run(self, record, count)
            return
        cycle = record.cycle
        fast = self._fast
        if not record.rob_empty:
            head = record.rob_head
            if fast is not None:
                code = self._stall_codes.get(head)
                if code is None:
                    code = _CAT_CODE[stall_category(self.program, head)]
                    self._stall_codes[head] = code
                fast.add_run(head, count, code)
                return
            category = stall_category(self.program, head)
            weights = [(head, 1.0)]
            for offset in range(count):
                c = cycle + offset
                self._advance_watch(c)
                self._emit(c, weights, category)
            return

        if self._oir_flag == _FLAG_MISPREDICT:
            category = Category.MISPREDICT
        elif self._oir_flag in (_FLAG_FLUSH, _FLAG_EXCEPTION):
            category = Category.MISC_FLUSH
        else:
            # Front-end drain: park every cycle of the run until the
            # next dispatch resolves it.
            if fast is None:
                for offset in range(count):
                    self._advance_watch(cycle + offset)
            self._pending_drain.extend(range(cycle, cycle + count))
            return
        addr = self._oir_addr
        kind = self._oir_kind
        if fast is not None:
            fast.add_run(addr, count, _CAT_CODE[category],
                         _FLUSH_CODE[kind])
            return
        weights = [(addr, 1.0)]
        for offset in range(count):
            c = cycle + offset
            self._advance_watch(c)
            self._emit(c, weights, category, kind)

    def _advance_watch(self, cycle: int) -> None:
        for marker in self._watch_markers:
            if marker.is_sample(cycle):
                self._watch.add(cycle)

    def on_block(self, block) -> None:
        """Vectorized columnar attribution (the fast, watch-free path).

        Instead of classifying every record, the loop classifies *runs*:
        a maximal span of commit-less, exception-free records with a
        uniform empty bit is located by C-speed ``find`` scans over the
        flag masks and one ``bisect`` over the commit prefix sums, then
        attributed with a single batched :meth:`_FastAccumulator.
        add_run`.  Runs are additionally cut at the next dispatching
        record whenever that dispatch would resolve a pending front-end
        drain (so emission order -- and therefore floating-point
        summation order -- matches the cycle engine exactly).
        """
        if self._fast is None:
            self._on_block_watch(block)
            return
        fast = self._fast
        add = fast.add
        add_run = fast.add_run
        start = block.start_cycle
        n = block.n
        cb = block.commit_base
        ca = block.commit_addr
        cm = block.commit_meta
        db = block.disp_base
        da = block.disp_addr
        flags_b = block.flags_bytes
        exc_mask = block.exc_mask
        rob_empty = block.rob_empty
        opt_vals = block.opt_vals
        opt_base = block.opt_base
        program = self.program
        stall_codes = self._stall_codes
        pending = self._pending_drain
        execution = _CAT_CODE[Category.EXECUTION]
        mispredict = _CAT_CODE[Category.MISPREDICT]
        misc_flush = _CAT_CODE[Category.MISC_FLUSH]
        flush_code = _FLUSH_CODE
        i = 0
        while i < n:
            if pending and db[i + 1] > db[i]:
                self._resolve_drain(da[db[i]])
            if exc_mask[i]:
                f = flags_b[i]
                exc = opt_vals[opt_base[i] + ((f >> 4) & 1)]
                self._oir_addr = exc
                self._oir_flag = _FLAG_EXCEPTION
                self._oir_kind = (FlushKind.ORDERING if f & _WIRE_ORD
                                  else FlushKind.EXCEPTION)
                add(exc, 1.0, misc_flush, flush_code[self._oir_kind])
                i += 1
                continue
            lo, hi = cb[i], cb[i + 1]
            if hi > lo:
                if hi - lo == 1:
                    add(ca[lo], 1.0, execution)
                else:
                    share = 1.0 / (hi - lo)
                    for k in range(lo, hi):
                        add(ca[k], share, execution)
                self._oir_addr = ca[hi - 1]
                meta = cm[hi - 1]
                if meta & 0x40:
                    self._oir_flag = _FLAG_MISPREDICT
                    self._oir_kind = FlushKind.MISPREDICT
                elif meta & 0x80:
                    self._oir_flag = _FLAG_FLUSH
                    self._oir_kind = FlushKind.CSR
                else:
                    self._oir_flag = _FLAG_NONE
                    self._oir_kind = None
                i += 1
                continue
            # Record i commits nothing and has no exception: find the
            # end of the maximal run that classifies like it.  The OIR
            # mirror cannot move inside such a run.
            empty = rob_empty[i]
            t = exc_mask.find(1, i + 1)
            if t < 0:
                t = n
            flip = rob_empty.find(0 if empty else 1, i + 1, t)
            if flip >= 0:
                t = flip
            q = bisect_right(cb, lo, i + 1, t + 1)
            if q <= t:
                t = q - 1  # record q-1 is the first committing record
            if not empty:
                # Head-of-ROB stall run.
                if pending:
                    d = bisect_right(db, db[i + 1], i + 2, t + 1)
                    if d <= t:
                        t = d - 1
                run = t - i
                f = flags_b[i]
                uniform = run == 1 or flags_b.count(f, i, t) == run
                if uniform and f & _WIRE_HEAD:
                    step = _WIRE_NOPT[f]
                    base0 = opt_base[i]
                    head = opt_vals[base0]
                    if run > 1:
                        hv = opt_vals[base0:base0 + step * run:step]
                        uniform = len(hv) == run and hv[:run - 1] == hv[1:]
                elif uniform:
                    head = None
                if uniform:
                    code = stall_codes.get(head)
                    if code is None:
                        code = _CAT_CODE[stall_category(program, head)]
                        stall_codes[head] = code
                    add_run(head, run, code)
                else:
                    # Mixed flags or heads inside the span: classify
                    # record by record, exactly like the cycle engine.
                    rob_head_at = block.rob_head_at
                    for j in range(i, t):
                        head = rob_head_at(j)
                        code = stall_codes.get(head)
                        if code is None:
                            code = _CAT_CODE[stall_category(program,
                                                            head)]
                            stall_codes[head] = code
                        add(head, 1.0, code)
                i = t
                continue
            if self._oir_flag == _FLAG_MISPREDICT:
                if pending:
                    d = bisect_right(db, db[i + 1], i + 2, t + 1)
                    if d <= t:
                        t = d - 1
                add_run(self._oir_addr, t - i, mispredict,
                        flush_code[self._oir_kind])
            elif self._oir_flag in (_FLAG_FLUSH, _FLAG_EXCEPTION):
                if pending:
                    d = bisect_right(db, db[i + 1], i + 2, t + 1)
                    if d <= t:
                        t = d - 1
                add_run(self._oir_addr, t - i, misc_flush,
                        flush_code[self._oir_kind])
            else:
                # Front-end drain: park the run; any dispatch inside
                # the span must resolve it, so cut there.
                d = bisect_right(db, db[i + 1], i + 2, t + 1)
                if d <= t:
                    t = d - 1
                pending.extend(range(start + i, start + t))
            i = t

    def _on_block_watch(self, block) -> None:
        """Watch-mode columnar replay: per-cycle :meth:`on_cycle`
        semantics (schedule advancement, interval accumulation, watched
        attributions) straight off the block's columns, without
        materializing ``CycleRecord`` objects."""
        start = block.start_cycle
        commit_base = block.commit_base
        commit_addr = block.commit_addr
        commit_meta = block.commit_meta
        disp_base = block.disp_base
        disp_addr = block.disp_addr
        exceptions = block.exception
        exc_ordering = block.exc_ordering
        rob_empty = block.rob_empty
        rob_head = block.rob_head
        program = self.program
        stall_cats = self._stall_cats
        markers = self._watch_markers
        watch = self._watch
        emit = self._emit
        for i in range(block.n):
            cycle = start + i
            for marker in markers:
                if marker.is_sample(cycle):
                    watch.add(cycle)
            if self._pending_drain and disp_base[i + 1] > disp_base[i]:
                self._resolve_drain(disp_addr[disp_base[i]])
            exc = exceptions[i]
            if exc is not None:
                self._oir_addr = exc
                self._oir_flag = _FLAG_EXCEPTION
                self._oir_kind = (FlushKind.ORDERING if exc_ordering[i]
                                  else FlushKind.EXCEPTION)
                emit(cycle, [(exc, 1.0)], Category.MISC_FLUSH,
                     self._oir_kind)
                continue
            lo, hi = commit_base[i], commit_base[i + 1]
            if hi > lo:
                share = 1.0 / (hi - lo)
                emit(cycle, [(commit_addr[k], share)
                             for k in range(lo, hi)],
                     Category.EXECUTION)
                self._oir_addr = commit_addr[hi - 1]
                meta = commit_meta[hi - 1]
                if meta & 0x40:
                    self._oir_flag = _FLAG_MISPREDICT
                    self._oir_kind = FlushKind.MISPREDICT
                elif meta & 0x80:
                    self._oir_flag = _FLAG_FLUSH
                    self._oir_kind = FlushKind.CSR
                else:
                    self._oir_flag = _FLAG_NONE
                    self._oir_kind = None
                continue
            if not rob_empty[i]:
                head = rob_head[i]
                category = stall_cats.get(head)
                if category is None:
                    category = stall_category(program, head)
                    stall_cats[head] = category
                emit(cycle, [(head, 1.0)], category)
                continue
            if self._oir_flag == _FLAG_MISPREDICT:
                emit(cycle, [(self._oir_addr, 1.0)],
                     Category.MISPREDICT, self._oir_kind)
            elif self._oir_flag in (_FLAG_FLUSH, _FLAG_EXCEPTION):
                emit(cycle, [(self._oir_addr, 1.0)],
                     Category.MISC_FLUSH, self._oir_kind)
            else:
                self._pending_drain.append(cycle)

    def on_finish(self, final_cycle: int) -> None:
        # Any unresolved drain at the end of the run has no successor
        # instruction; those cycles are dropped (they cannot occur after
        # the final halt commits, so this only covers truncated runs).
        self._pending_drain.clear()
        if self._fast is not None:
            self._fast.flush_into(self.report)
        self.report.total_cycles = final_cycle

    # -- sharded replay (snapshot/merge protocol) ------------------------------------

    def begin_shard(self, start_cycle: int, carry) -> None:
        """Resume attribution mid-stream from carried chunk state."""
        for marker in self._watch_markers:
            marker.fast_forward(start_cycle)
        for accumulator in self._accumulators:
            accumulator.schedule.fast_forward(start_cycle)
        self._oir_addr = carry.oir_addr
        self._oir_flag = carry.oir_flag
        self._oir_kind = _KIND_TO_FLUSH[carry.oir_kind]

    def shard_settled(self) -> bool:
        return not self._pending_drain

    def resolve_only(self, record: CycleRecord) -> bool:
        """Run-over mode: resolve a trailing front-end drain only."""
        if self._pending_drain and record.dispatched:
            self._resolve_drain(record.dispatched[0])
        return not self._pending_drain

    def snapshot(self) -> dict:
        """Picklable capture of everything this shard attributed."""
        if self._fast is not None:
            self._fast.flush_into(self.report)
        report = self.report
        return {
            "profile": dict(report.profile),
            "categorized": dict(report.categorized),
            "category_totals": dict(report.category_totals),
            "flush_breakdown": dict(report.flush_breakdown),
            "watched": dict(report.watched),
            "intervals": {key: {cycle: dict(weights)
                                for cycle, weights in per_cycle.items()}
                          for key, per_cycle in report.intervals.items()},
            # Partial interval accumulation past the last sample point,
            # folded into the successor shard's first interval on merge.
            "residuals": {schedule_key(acc.schedule): dict(acc.current)
                          for acc in self._accumulators},
        }

    def absorb(self, snapshots: Iterable[dict],
               total_cycles: int) -> None:
        """Merge-side leg of the shard protocol: fill this (fresh)
        profiler's report from ordered shard snapshots."""
        self.report = merge_oracle_snapshots(snapshots, total_cycles)
        self._fast = None  # the report is final; don't re-flush scratch

    # -- internals -------------------------------------------------------------------

    def _resolve_drain(self, addr: int) -> None:
        # Cleared in place: the block fast path holds an alias.
        pending = self._pending_drain
        if self._fast is not None:
            self._fast.add_run(addr, len(pending),
                               _CAT_CODE[Category.FRONTEND])
            pending.clear()
            return
        cycles = list(pending)
        pending.clear()
        for cycle in cycles:
            self._emit(cycle, [(addr, 1.0)], Category.FRONTEND)

    def _emit(self, cycle: int, weights: Attribution,
              category: Category,
              flush_kind: Optional[FlushKind] = None) -> None:
        if self._fast is not None:
            # No watches are active; route through the scratch so a run
            # that mixes engines (block shard body + record run-over)
            # keeps one accumulation order.
            cat_code = _CAT_CODE[category]
            flush_code = -1 if flush_kind is None \
                else _FLUSH_CODE[flush_kind]
            for addr, weight in weights:
                self._fast.add(addr, weight, cat_code, flush_code)
            return
        for addr, weight in weights:
            self.report.add(addr, weight, category, flush_kind)
        if cycle in self._watch:
            self.report.watched[cycle] = (weights, category)
        for accumulator in self._accumulators:
            accumulator.add(cycle, weights)


def _merge_into(target: Dict, source: Dict) -> None:
    for key, value in source.items():
        target[key] = target.get(key, 0.0) + value


def merge_oracle_snapshots(snapshots: Iterable[dict],
                           total_cycles: int) -> OracleReport:
    """Combine ordered shard snapshots into one :class:`OracleReport`.

    Every cycle is attributed in exactly one shard, so profile,
    category and watch data merge by summation/union.  Interval
    accumulations that span a shard boundary are stitched: a shard's
    *residual* (attribution past its last sample point) is folded into
    the successor's first interval.  Values match a serial replay up to
    floating-point summation order.
    """
    report = OracleReport()
    snapshots = list(snapshots)
    for snap in snapshots:
        _merge_into(report.profile, snap["profile"])
        _merge_into(report.categorized, snap["categorized"])
        _merge_into(report.category_totals, snap["category_totals"])
        _merge_into(report.flush_breakdown, snap["flush_breakdown"])
        report.watched.update(snap["watched"])

    keys = {key for snap in snapshots for key in snap["intervals"]}
    for key in keys:
        merged: Dict[int, Dict[int, float]] = {}
        carry: Dict[int, float] = {}
        for snap in snapshots:
            per_cycle = snap["intervals"].get(key, {})
            items = sorted(per_cycle.items())
            for position, (cycle, weights) in enumerate(items):
                interval = dict(weights)
                if position == 0 and carry:
                    _merge_into(interval, carry)
                    carry = {}
                merged[cycle] = interval
            residual = snap["residuals"].get(key, {})
            if items:
                carry = dict(residual)
            else:
                _merge_into(carry, residual)
        report.intervals[key] = merged
    report.total_cycles = total_cycles
    return report
