"""The Oracle profiler: the golden reference (Section 2.2).

Oracle attributes *every* clock cycle to the instruction(s) whose latency
the processor exposes in that cycle, using the four commit-stage states of
Figure 3:

* **Computing** -- one or more instructions commit: attribute ``1/n``
  cycles to each of the ``n`` committing instructions.
* **Stalled** -- the ROB is non-empty but nothing commits: attribute the
  cycle to the instruction at the head of the ROB.
* **Flushed** -- the ROB is empty because of misspeculation or an
  exception: attribute the cycle to the instruction that emptied the ROB
  (mispredicted branch, flushing CSR, or excepting instruction).
* **Drained** -- the ROB is empty because the front-end is not supplying
  instructions: attribute the cycle to the first instruction that enters
  the ROB after the stall (resolved retroactively).

Besides the full per-instruction time profile and per-category cycle
stacks (Figure 7/13), Oracle can *watch* sampling schedules: for each
sample point it records both the golden attribution of the sampled cycle
and the golden attribution of the whole interval the sample represents.
The error metric (Section 4) judges every practical profiler's sample
against the latter: a sample stands for the entire period since the
previous sample, so even a profiler that matches Oracle cycle-for-cycle
retains *unsystematic* error that shrinks as the sampling frequency
rises.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..cpu.trace import CycleRecord, TraceObserver
from ..isa.program import Program
from .samples import Attribution, Category, FlushKind, stall_category
from .sampling import SampleSchedule

#: OIR flag values (mirrors TIP's 3-bit OIR flags).
_FLAG_NONE = 0
_FLAG_MISPREDICT = 1
_FLAG_FLUSH = 2
_FLAG_EXCEPTION = 3

#: Key identifying a sampling schedule: (period, mode, seed).
ScheduleKey = Tuple[int, str, int]

#: ChunkCarry flush-kind code (KIND_*) -> FlushKind.
_KIND_TO_FLUSH: Dict[int, Optional[FlushKind]] = {
    0: None, 1: FlushKind.MISPREDICT, 2: FlushKind.CSR,
    3: FlushKind.EXCEPTION, 4: FlushKind.ORDERING,
}


def schedule_key(schedule: SampleSchedule) -> ScheduleKey:
    return (schedule.period, schedule.mode, schedule.seed)


class _IntervalAccumulator:
    """Accumulates golden attribution between consecutive sample points."""

    __slots__ = ("schedule", "current", "intervals")

    def __init__(self, schedule: SampleSchedule):
        self.schedule = schedule
        self.current: Dict[int, float] = {}
        #: sample cycle -> (addr -> golden cycles within the interval).
        self.intervals: Dict[int, Dict[int, float]] = {}

    def add(self, cycle: int, weights: Attribution) -> None:
        current = self.current
        for addr, weight in weights:
            current[addr] = current.get(addr, 0.0) + weight
        if self.schedule.is_sample(cycle):
            self.intervals[cycle] = current
            self.current = {}


class OracleReport:
    """Everything Oracle learned about a run."""

    def __init__(self):
        #: addr -> attributed cycles.
        self.profile: Dict[int, float] = {}
        #: (addr, category) -> attributed cycles.
        self.categorized: Dict[Tuple[int, Category], float] = {}
        #: category -> total cycles.
        self.category_totals: Dict[Category, float] = {}
        #: fine-grained flush breakdown (paper: "more fine-grained
        #: categories"): FlushKind -> attributed cycles.
        self.flush_breakdown: Dict[FlushKind, float] = {}
        #: sample cycle -> golden attribution of that exact cycle.
        self.watched: Dict[int, Tuple[Attribution, Category]] = {}
        #: schedule key -> sample cycle -> golden interval attribution.
        self.intervals: Dict[ScheduleKey, Dict[int, Dict[int, float]]] = {}
        self.total_cycles = 0

    def add(self, addr: int, weight: float, category: Category,
            flush_kind: Optional[FlushKind] = None) -> None:
        self.profile[addr] = self.profile.get(addr, 0.0) + weight
        key = (addr, category)
        self.categorized[key] = self.categorized.get(key, 0.0) + weight
        self.category_totals[category] = \
            self.category_totals.get(category, 0.0) + weight
        if flush_kind is not None:
            self.flush_breakdown[flush_kind] = \
                self.flush_breakdown.get(flush_kind, 0.0) + weight

    def interval_for(self, key: ScheduleKey,
                     cycle: int) -> Optional[Dict[int, float]]:
        per_cycle = self.intervals.get(key)
        if per_cycle is None:
            return None
        return per_cycle.get(cycle)

    def normalized_profile(self) -> Dict[int, float]:
        """Profile as fraction of total attributed time."""
        total = sum(self.profile.values())
        if not total:
            return {}
        return {addr: t / total for addr, t in self.profile.items()}


class OracleProfiler(TraceObserver):
    """Cycle-exact time-proportional attribution over the commit trace.

    Attribution is emitted strictly in cycle order (front-end drains delay
    emission until the drain resolves, but nothing can be attributed in
    between), which lets the interval accumulators see a clean stream.
    """

    def __init__(self, program: Program,
                 watch_cycles: Optional[Iterable[int]] = None,
                 watch_schedules: Optional[List[SampleSchedule]] = None):
        self.program = program
        self.report = OracleReport()
        self._watch = set(watch_cycles or ())
        self._watch_markers = []  # schedules marking per-cycle watches
        self._accumulators: List[_IntervalAccumulator] = []
        for schedule in watch_schedules or ():
            self._watch_markers.append(schedule.clone())
            accumulator = _IntervalAccumulator(schedule.clone())
            self._accumulators.append(accumulator)
            self.report.intervals[schedule_key(schedule)] = \
                accumulator.intervals
        # OIR mirror: address + flags of the most recent committing or
        # excepting instruction.
        self._oir_addr: Optional[int] = None
        self._oir_flag = _FLAG_NONE
        self._oir_kind: Optional[FlushKind] = None
        # Cycles waiting for the end of a front-end drain.
        self._pending_drain: List[int] = []

    # -- trace consumption ---------------------------------------------------------

    def on_cycle(self, record: CycleRecord) -> None:
        cycle = record.cycle
        for marker in self._watch_markers:
            if marker.is_sample(cycle):
                self._watch.add(cycle)

        # A drain ends when the first instruction enters the ROB.
        if self._pending_drain and record.dispatched:
            self._resolve_drain(record.dispatched[0])

        if record.exception is not None:
            # The core is about to trigger an exception: the empty-ROB
            # cycles that follow belong to the excepting instruction.
            self._oir_addr = record.exception
            self._oir_flag = _FLAG_EXCEPTION
            self._oir_kind = (FlushKind.ORDERING
                              if record.exception_is_ordering
                              else FlushKind.EXCEPTION)
            self._emit(cycle, [(record.exception, 1.0)],
                       Category.MISC_FLUSH, self._oir_kind)
            return

        if record.committed:
            share = 1.0 / len(record.committed)
            weights = [(c.addr, share) for c in record.committed]
            self._emit(cycle, weights, Category.EXECUTION)
            youngest = record.committed[-1]
            self._oir_addr = youngest.addr
            if youngest.mispredicted:
                self._oir_flag = _FLAG_MISPREDICT
                self._oir_kind = FlushKind.MISPREDICT
            elif youngest.flushes:
                self._oir_flag = _FLAG_FLUSH
                self._oir_kind = FlushKind.CSR
            else:
                self._oir_flag = _FLAG_NONE
                self._oir_kind = None
            return

        if not record.rob_empty:
            category = stall_category(self.program, record.rob_head)
            self._emit(cycle, [(record.rob_head, 1.0)], category)
            return

        # Empty ROB: flushed if the OIR carries a flush reason, else a
        # front-end drain resolved at the next dispatch.
        if self._oir_flag == _FLAG_MISPREDICT:
            self._emit(cycle, [(self._oir_addr, 1.0)],
                       Category.MISPREDICT, self._oir_kind)
        elif self._oir_flag in (_FLAG_FLUSH, _FLAG_EXCEPTION):
            self._emit(cycle, [(self._oir_addr, 1.0)],
                       Category.MISC_FLUSH, self._oir_kind)
        else:
            self._pending_drain.append(cycle)

    def on_finish(self, final_cycle: int) -> None:
        # Any unresolved drain at the end of the run has no successor
        # instruction; those cycles are dropped (they cannot occur after
        # the final halt commits, so this only covers truncated runs).
        self._pending_drain.clear()
        self.report.total_cycles = final_cycle

    # -- sharded replay (snapshot/merge protocol) ------------------------------------

    def begin_shard(self, start_cycle: int, carry) -> None:
        """Resume attribution mid-stream from carried chunk state."""
        for marker in self._watch_markers:
            marker.fast_forward(start_cycle)
        for accumulator in self._accumulators:
            accumulator.schedule.fast_forward(start_cycle)
        self._oir_addr = carry.oir_addr
        self._oir_flag = carry.oir_flag
        self._oir_kind = _KIND_TO_FLUSH[carry.oir_kind]

    def shard_settled(self) -> bool:
        return not self._pending_drain

    def resolve_only(self, record: CycleRecord) -> bool:
        """Run-over mode: resolve a trailing front-end drain only."""
        if self._pending_drain and record.dispatched:
            self._resolve_drain(record.dispatched[0])
        return not self._pending_drain

    def snapshot(self) -> dict:
        """Picklable capture of everything this shard attributed."""
        report = self.report
        return {
            "profile": dict(report.profile),
            "categorized": dict(report.categorized),
            "category_totals": dict(report.category_totals),
            "flush_breakdown": dict(report.flush_breakdown),
            "watched": dict(report.watched),
            "intervals": {key: {cycle: dict(weights)
                                for cycle, weights in per_cycle.items()}
                          for key, per_cycle in report.intervals.items()},
            # Partial interval accumulation past the last sample point,
            # folded into the successor shard's first interval on merge.
            "residuals": {schedule_key(acc.schedule): dict(acc.current)
                          for acc in self._accumulators},
        }

    # -- internals -------------------------------------------------------------------

    def _resolve_drain(self, addr: int) -> None:
        pending, self._pending_drain = self._pending_drain, []
        for cycle in pending:
            self._emit(cycle, [(addr, 1.0)], Category.FRONTEND)

    def _emit(self, cycle: int, weights: Attribution,
              category: Category,
              flush_kind: Optional[FlushKind] = None) -> None:
        for addr, weight in weights:
            self.report.add(addr, weight, category, flush_kind)
        if cycle in self._watch:
            self.report.watched[cycle] = (weights, category)
        for accumulator in self._accumulators:
            accumulator.add(cycle, weights)


def _merge_into(target: Dict, source: Dict) -> None:
    for key, value in source.items():
        target[key] = target.get(key, 0.0) + value


def merge_oracle_snapshots(snapshots: Iterable[dict],
                           total_cycles: int) -> OracleReport:
    """Combine ordered shard snapshots into one :class:`OracleReport`.

    Every cycle is attributed in exactly one shard, so profile,
    category and watch data merge by summation/union.  Interval
    accumulations that span a shard boundary are stitched: a shard's
    *residual* (attribution past its last sample point) is folded into
    the successor's first interval.  Values match a serial replay up to
    floating-point summation order.
    """
    report = OracleReport()
    snapshots = list(snapshots)
    for snap in snapshots:
        _merge_into(report.profile, snap["profile"])
        _merge_into(report.categorized, snap["categorized"])
        _merge_into(report.category_totals, snap["category_totals"])
        _merge_into(report.flush_breakdown, snap["flush_breakdown"])
        report.watched.update(snap["watched"])

    keys = {key for snap in snapshots for key in snap["intervals"]}
    for key in keys:
        merged: Dict[int, Dict[int, float]] = {}
        carry: Dict[int, float] = {}
        for snap in snapshots:
            per_cycle = snap["intervals"].get(key, {})
            items = sorted(per_cycle.items())
            for position, (cycle, weights) in enumerate(items):
                interval = dict(weights)
                if position == 0 and carry:
                    _merge_into(interval, carry)
                    carry = {}
                merged[cycle] = interval
            residual = snap["residuals"].get(key, {})
            if items:
                carry = dict(residual)
            else:
                _merge_into(carry, residual)
        report.intervals[key] = merged
    report.total_cycles = total_cycles
    return report
