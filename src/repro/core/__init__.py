"""The paper's contribution: Oracle, TIP and the baseline profilers."""

from .baselines import (DispatchProfiler, LciProfiler, NciIlpProfiler,
                        NciProfiler, SoftwareProfiler)
from .oracle import OracleProfiler, OracleReport, merge_oracle_snapshots
from .perfio import PerfDecoder, PerfEncoder, PerfSession, RecordLayout
from .overhead import (OverheadSummary, oracle_data_rate,
                       sample_payload_bytes, sample_record_bytes,
                       sampling_data_rate, summarize, tip_storage_bytes)
from .profiler import SamplingProfiler
from .samples import Attribution, Category, FlushKind, Sample, stall_category
from .sampling import (CORE_CLOCK_HZ, DEFAULT_FREQUENCY_HZ, SampleSchedule,
                       period_for_frequency)
from .tip import TipIlpProfiler, TipProfiler

__all__ = [
    "DispatchProfiler", "LciProfiler", "NciIlpProfiler", "NciProfiler",
    "SoftwareProfiler", "OracleProfiler", "OracleReport",
    "merge_oracle_snapshots",
    "PerfDecoder", "PerfEncoder", "PerfSession", "RecordLayout",
    "OverheadSummary", "oracle_data_rate", "sample_payload_bytes",
    "sample_record_bytes", "sampling_data_rate", "summarize",
    "tip_storage_bytes", "SamplingProfiler", "Attribution", "Category",
    "FlushKind", "Sample", "stall_category", "CORE_CLOCK_HZ", "DEFAULT_FREQUENCY_HZ",
    "SampleSchedule", "period_for_frequency", "TipIlpProfiler",
    "TipProfiler",
]
