"""Sampling schedules.

The PMU triggers a sample every *period* cycles (periodic sampling) or at
a uniformly random cycle within each period (random sampling, Section
5.2).  Schedules are deterministic given their parameters, so several
profilers constructed with equal schedules sample the *exact same
cycles* -- the property the paper exploits to isolate systematic error.

The paper samples at 4 kHz on a 3.2 GHz core, i.e. one sample per 800 000
cycles of a full SPEC run.  Our synthetic workloads are orders of
magnitude shorter, so the harness picks periods that yield a comparable
*number of samples per run*; the frequency labels map through
:func:`period_for_frequency`.
"""

from __future__ import annotations

import random
from typing import Optional

#: The paper's simulated clock (Table 1), used to express sampling
#: frequencies as periods.
CORE_CLOCK_HZ = 3_200_000_000
#: perf's default sampling frequency.
DEFAULT_FREQUENCY_HZ = 4000


def period_for_frequency(frequency_hz: float,
                         clock_hz: float = CORE_CLOCK_HZ) -> int:
    """Cycles between samples for a sampling frequency on a real core."""
    return max(1, int(round(clock_hz / frequency_hz)))


class SampleSchedule:
    """Deterministic stream of sample cycles."""

    def __init__(self, period: int, mode: str = "periodic",
                 seed: int = 0, offset: Optional[int] = None):
        if period < 1:
            raise ValueError("sampling period must be >= 1 cycle")
        if mode not in ("periodic", "random"):
            raise ValueError(f"unknown sampling mode {mode!r}")
        self.period = period
        self.mode = mode
        self.seed = seed
        self.offset = period - 1 if offset is None else offset
        self._rng = random.Random(seed)
        self._interval_start = 0
        self._next = self._draw_first()

    def _draw_first(self) -> int:
        if self.mode == "periodic":
            return self._interval_start + self.offset
        return self._interval_start + self._rng.randrange(self.period)

    @property
    def next_sample(self) -> int:
        return self._next

    def is_sample(self, cycle: int) -> bool:
        """True iff *cycle* is a sample point; advances past it if so."""
        if cycle < self._next:
            return False
        hit = cycle == self._next
        while self._next <= cycle:
            self._interval_start += self.period
            if self.mode == "periodic":
                self._next = self._interval_start + self.offset
            else:
                self._next = (self._interval_start
                              + self._rng.randrange(self.period))
        return hit

    def fast_forward(self, start_cycle: int) -> int:
        """Advance past every sample point before *start_cycle*.

        Leaves the schedule in exactly the state it would have after
        ``is_sample`` was called for every cycle in ``[0, start_cycle)``
        -- including the RNG draw sequence in random mode, which draws
        once per period interval.  Returns the last sample cycle that
        was skipped (``-1`` if none), which is the value a profiler
        needs for ``_prev_sample_cycle`` when it resumes mid-stream.
        """
        prev = -1
        while self._next < start_cycle:
            prev = self._next
            self._interval_start += self.period
            if self.mode == "periodic":
                self._next = self._interval_start + self.offset
            else:
                self._next = (self._interval_start
                              + self._rng.randrange(self.period))
        return prev

    def clone(self) -> "SampleSchedule":
        """A fresh schedule with identical parameters (same cycles)."""
        return SampleSchedule(self.period, self.mode, self.seed, self.offset)

    def __repr__(self) -> str:
        return f"<schedule {self.mode} period={self.period}>"
