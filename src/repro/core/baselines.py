"""Baseline profilers: Software, Dispatch, LCI, NCI, and NCI+ILP.

Each models the instruction-selection policy of a deployed profiler
family (Section 5):

* :class:`SoftwareProfiler` -- interrupt-based sampling (Linux perf
  without hardware assist).  The sample lands on the address execution
  will resume from after the in-flight instructions drain, i.e. the
  front-end's fetch PC: *skid*.
* :class:`DispatchProfiler` -- AMD IBS / Arm SPE: tag the instruction at
  the dispatch stage and report it.  Biased towards instructions stuck at
  dispatch behind back-pressure from a stalled ROB head (Figure 2b).
* :class:`LciProfiler` -- external monitors (Arm CoreSight): report the
  last-committed instruction.
* :class:`NciProfiler` -- Intel PEBS: report the next-committing
  instruction.
* :class:`NciIlpProfiler` -- the Section 5.2 sensitivity variant: spread
  the sample over all instructions in the next committing group.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

from ..cpu.trace import CycleRecord
from .profiler import Outcome, SamplingProfiler
from .sampling import SampleSchedule


class SoftwareProfiler(SamplingProfiler):
    """Interrupt-based sampling with skid.

    On an interrupt the in-flight instructions drain and the handler
    reads the PC execution will resume from -- the front-end's fetch PC,
    tens to hundreds of instructions past the commit point.  The
    optional *skid_cycles* adds interrupt-delivery latency on top: the
    PC is captured that many cycles after the sampling decision, which
    is how software-timer sampling behaves on real systems.
    """

    name = "Software"
    block_native = True

    def __init__(self, schedule: SampleSchedule, skid_cycles: int = 0):
        super().__init__(schedule)
        if skid_cycles < 0:
            raise ValueError("skid_cycles must be >= 0")
        self.skid_cycles = skid_cycles
        self._deliver_at: Optional[int] = None
        # With skid, resolution depends on when the pending sample was
        # taken, not only on the record stream -- a shard worker cannot
        # reproduce it, so sharded replay falls back to serial.
        self.shardable = skid_cycles == 0

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if self.skid_cycles == 0:
            return [(record.fetch_pc, 1.0)], None
        self._deliver_at = record.cycle + self.skid_cycles
        return None

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if self._deliver_at is not None and \
                record.cycle >= self._deliver_at:
            self._deliver_at = None
            return [(record.fetch_pc, 1.0)], None
        return None

    def _block_attribute(self, block, i: int) -> Optional[Outcome]:
        if self.skid_cycles == 0:
            return [(block.fetch_pc[i], 1.0)], None
        self._deliver_at = block.start_cycle + i + self.skid_cycles
        return None

    def _block_scan_resolve(self, block, i: int) -> Optional[int]:
        # The interrupt delivers at the first cycle >= _deliver_at;
        # pendings carried across a block boundary may deliver at 0.
        r = max(i, self._deliver_at - block.start_cycle)
        return r if r < block.n else None

    def _block_resolve_outcome(self, block, i: int) -> Outcome:
        self._deliver_at = None
        return [(block.fetch_pc[i], 1.0)], None

    def _next_resolve_cycle(self, record: CycleRecord,
                            end: int) -> Optional[int]:
        # Skidded delivery is time-driven: the pending sample resolves
        # at the first cycle >= _deliver_at even if every record in the
        # stall run is identical.
        if self._deliver_at is None:
            return None
        nxt = max(self._deliver_at, record.cycle + 1)
        return nxt if nxt < end else None


class DispatchProfiler(SamplingProfiler):
    """Tag at dispatch, as AMD IBS and Arm SPE do."""

    name = "Dispatch"
    block_native = True

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if record.dispatch_pc is not None:
            return [(record.dispatch_pc, 1.0)], None
        return None  # nothing at dispatch: tag the next arrival

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.dispatch_pc is not None:
            return [(record.dispatch_pc, 1.0)], None
        return None

    def _block_attribute(self, block, i: int) -> Optional[Outcome]:
        pc = block.dispatch_pc_at(i)
        if pc is not None:
            return [(pc, 1.0)], None
        return None

    def _block_scan_resolve(self, block, i: int) -> Optional[int]:
        r = block.disp_pc_mask.find(1, i)
        return r if r >= 0 else None

    def _block_resolve_outcome(self, block, i: int) -> Outcome:
        return [(block.dispatch_pc_at(i), 1.0)], None


class LciProfiler(SamplingProfiler):
    """Report the last-committed instruction."""

    name = "LCI"
    block_native = True

    def __init__(self, schedule: SampleSchedule):
        super().__init__(schedule)
        self._last_committed: Optional[int] = None

    def _update_state(self, record: CycleRecord) -> None:
        if record.committed:
            self._last_committed = record.committed[-1].addr

    def _restore_carry(self, carry) -> None:
        self._last_committed = carry.last_committed

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if self._last_committed is not None:
            return [(self._last_committed, 1.0)], None
        return None  # before the first commit: wait for it

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.committed:
            return [(record.committed[-1].addr, 1.0)], None
        return None

    def _block_attribute(self, block, i: int) -> Optional[Outcome]:
        # _update_state runs before _attribute, so a commit group at the
        # sampled cycle itself already counts: commit_base[i + 1] is the
        # number of commits at or before index i, and the youngest of
        # them sits just below it in the packed commit_addr column.
        v = block.commit_base[i + 1]
        if v:
            return [(block.commit_addr[v - 1], 1.0)], None
        if self._last_committed is not None:
            return [(self._last_committed, 1.0)], None
        return None

    def _block_scan_resolve(self, block, i: int) -> Optional[int]:
        # First committing record >= i: the first index where the
        # commit prefix sum rises above its value at i.
        cb = block.commit_base
        q = bisect_right(cb, cb[i], i + 1)
        return q - 1 if q <= block.n else None

    def _block_resolve_outcome(self, block, i: int) -> Outcome:
        youngest = block.commit_addr[block.commit_base[i + 1] - 1]
        return [(youngest, 1.0)], None

    def _block_update_tail(self, block) -> None:
        v = block.commit_base[block.n]
        if v:
            self._last_committed = block.commit_addr[v - 1]


class NciProfiler(SamplingProfiler):
    """Report the next-committing instruction (Intel PEBS)."""

    name = "NCI"
    block_native = True

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if record.committed:
            return self._commit_group(record)
        return None

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.committed:
            return self._commit_group(record)
        return None

    def _commit_group(self, record: CycleRecord) -> Outcome:
        return [(record.committed[0].addr, 1.0)], None

    def _block_attribute(self, block, i: int) -> Optional[Outcome]:
        if block.commit_base[i + 1] > block.commit_base[i]:
            return self._block_commit_group(block, i)
        return None

    def _block_scan_resolve(self, block, i: int) -> Optional[int]:
        cb = block.commit_base
        q = bisect_right(cb, cb[i], i + 1)
        return q - 1 if q <= block.n else None

    def _block_resolve_outcome(self, block, i: int) -> Outcome:
        return self._block_commit_group(block, i)

    def _block_commit_group(self, block, i: int) -> Outcome:
        return [(block.commit_addr[block.commit_base[i]], 1.0)], None


class NciIlpProfiler(NciProfiler):
    """Commit-parallelism-aware NCI (Section 5.2 sensitivity study)."""

    name = "NCI+ILP"
    ilp_aware = True

    def _commit_group(self, record: CycleRecord) -> Outcome:
        share = 1.0 / len(record.committed)
        return [(c.addr, share) for c in record.committed], None

    def _block_commit_group(self, block, i: int) -> Outcome:
        lo, hi = block.commit_base[i], block.commit_base[i + 1]
        share = 1.0 / (hi - lo)
        return [(block.commit_addr[k], share)
                for k in range(lo, hi)], None
