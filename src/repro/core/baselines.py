"""Baseline profilers: Software, Dispatch, LCI, NCI, and NCI+ILP.

Each models the instruction-selection policy of a deployed profiler
family (Section 5):

* :class:`SoftwareProfiler` -- interrupt-based sampling (Linux perf
  without hardware assist).  The sample lands on the address execution
  will resume from after the in-flight instructions drain, i.e. the
  front-end's fetch PC: *skid*.
* :class:`DispatchProfiler` -- AMD IBS / Arm SPE: tag the instruction at
  the dispatch stage and report it.  Biased towards instructions stuck at
  dispatch behind back-pressure from a stalled ROB head (Figure 2b).
* :class:`LciProfiler` -- external monitors (Arm CoreSight): report the
  last-committed instruction.
* :class:`NciProfiler` -- Intel PEBS: report the next-committing
  instruction.
* :class:`NciIlpProfiler` -- the Section 5.2 sensitivity variant: spread
  the sample over all instructions in the next committing group.
"""

from __future__ import annotations

from typing import Optional

from ..cpu.trace import CycleRecord
from .profiler import Outcome, SamplingProfiler
from .sampling import SampleSchedule


class SoftwareProfiler(SamplingProfiler):
    """Interrupt-based sampling with skid.

    On an interrupt the in-flight instructions drain and the handler
    reads the PC execution will resume from -- the front-end's fetch PC,
    tens to hundreds of instructions past the commit point.  The
    optional *skid_cycles* adds interrupt-delivery latency on top: the
    PC is captured that many cycles after the sampling decision, which
    is how software-timer sampling behaves on real systems.
    """

    name = "Software"

    def __init__(self, schedule: SampleSchedule, skid_cycles: int = 0):
        super().__init__(schedule)
        if skid_cycles < 0:
            raise ValueError("skid_cycles must be >= 0")
        self.skid_cycles = skid_cycles
        self._deliver_at: Optional[int] = None
        # With skid, resolution depends on when the pending sample was
        # taken, not only on the record stream -- a shard worker cannot
        # reproduce it, so sharded replay falls back to serial.
        self.shardable = skid_cycles == 0

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if self.skid_cycles == 0:
            return [(record.fetch_pc, 1.0)], None
        self._deliver_at = record.cycle + self.skid_cycles
        return None

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if self._deliver_at is not None and \
                record.cycle >= self._deliver_at:
            self._deliver_at = None
            return [(record.fetch_pc, 1.0)], None
        return None


class DispatchProfiler(SamplingProfiler):
    """Tag at dispatch, as AMD IBS and Arm SPE do."""

    name = "Dispatch"

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if record.dispatch_pc is not None:
            return [(record.dispatch_pc, 1.0)], None
        return None  # nothing at dispatch: tag the next arrival

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.dispatch_pc is not None:
            return [(record.dispatch_pc, 1.0)], None
        return None


class LciProfiler(SamplingProfiler):
    """Report the last-committed instruction."""

    name = "LCI"

    def __init__(self, schedule: SampleSchedule):
        super().__init__(schedule)
        self._last_committed: Optional[int] = None

    def _update_state(self, record: CycleRecord) -> None:
        if record.committed:
            self._last_committed = record.committed[-1].addr

    def _restore_carry(self, carry) -> None:
        self._last_committed = carry.last_committed

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if self._last_committed is not None:
            return [(self._last_committed, 1.0)], None
        return None  # before the first commit: wait for it

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.committed:
            return [(record.committed[-1].addr, 1.0)], None
        return None


class NciProfiler(SamplingProfiler):
    """Report the next-committing instruction (Intel PEBS)."""

    name = "NCI"

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if record.committed:
            return self._commit_group(record)
        return None

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.committed:
            return self._commit_group(record)
        return None

    def _commit_group(self, record: CycleRecord) -> Outcome:
        return [(record.committed[0].addr, 1.0)], None


class NciIlpProfiler(NciProfiler):
    """Commit-parallelism-aware NCI (Section 5.2 sensitivity study)."""

    name = "NCI+ILP"
    ilp_aware = True

    def _commit_group(self, record: CycleRecord) -> Outcome:
        share = 1.0 / len(record.committed)
        return [(c.addr, share) for c in record.committed], None
