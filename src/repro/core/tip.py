"""TIP: the Time-Proportional Instruction Profiler (Section 3).

TIP applies Oracle's attribution policies at statistically sampled cycles
using only state a lean hardware unit can maintain:

* the addresses (and valid/commit bits) of the head ROB entry in each
  bank, plus the oldest-ID bank pointer;
* the Offending Instruction Register (OIR), updated every cycle with the
  youngest committing instruction's address and its
  mispredicted/flush/exception flags;
* a Stalled flag and the Exception/Flush/Mispredicted/Front-end flags.

In the *Computing* state the sample is attributed ``1/n`` to each of the
``n`` committing instructions; in the *Stalled* state to the oldest valid
head entry; in the *Flushed* state to the OIR address; and in the
*Drained* state TIP keeps its address CSR write-enables asserted until
the first instruction dispatches, whose address then receives the sample
(a pending sample in this model).

:class:`TipIlpProfiler` is the TIP-ILP ablation of Section 5: identical,
except that a Computing-state sample goes to the oldest committing
instruction only.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Optional

from ..cpu.trace import CycleRecord
from ..isa.program import Program
from .profiler import Outcome, SamplingProfiler
from .samples import Category, stall_category
from .sampling import SampleSchedule

_FLAG_NONE = 0
_FLAG_MISPREDICT = 1
_FLAG_FLUSH = 2
_FLAG_EXCEPTION = 3


class TipProfiler(SamplingProfiler):
    """Time-proportional sampling profiler (the paper's contribution)."""

    name = "TIP"
    ilp_aware = True
    block_native = True

    def __init__(self, schedule: SampleSchedule, program: Program):
        super().__init__(schedule)
        self.program = program
        self._oir_addr: Optional[int] = None
        self._oir_flag = _FLAG_NONE

    # -- OIR update unit (runs every cycle, Figure 5) ---------------------------------

    def _update_state(self, record: CycleRecord) -> None:
        if record.committed:
            youngest = record.committed[-1]
            self._oir_addr = youngest.addr
            if youngest.mispredicted:
                self._oir_flag = _FLAG_MISPREDICT
            elif youngest.flushes:
                self._oir_flag = _FLAG_FLUSH
            else:
                self._oir_flag = _FLAG_NONE
        elif record.exception is not None:
            self._oir_addr = record.exception
            self._oir_flag = _FLAG_EXCEPTION

    def _restore_carry(self, carry) -> None:
        # ChunkCarry OIR flag values match the _FLAG_* constants.
        self._oir_addr = carry.oir_addr
        self._oir_flag = carry.oir_flag

    # -- sample selection unit (Figure 6) ----------------------------------------------

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        if record.committed:
            # Computing: the address CSRs hold the committing entries and
            # the Stalled flag is 0.
            return self._computing(record)

        if not record.rob_empty:
            # Stalled: only the oldest head entry is valid.
            category = stall_category(self.program, record.rob_head)
            return [(record.rob_head, 1.0)], category

        # Empty ROB: the OIR address is placed in address CSR 0 together
        # with its Exception/Flush/Mispredicted flag...
        if self._oir_flag == _FLAG_MISPREDICT:
            return [(self._oir_addr, 1.0)], Category.MISPREDICT
        if self._oir_flag in (_FLAG_FLUSH, _FLAG_EXCEPTION):
            return [(self._oir_addr, 1.0)], Category.MISC_FLUSH

        # ...otherwise the Front-end flag is set and the address CSRs keep
        # their write enables asserted until the first dispatch.
        return None

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        if record.dispatched:
            return [(record.dispatched[0], 1.0)], Category.FRONTEND
        return None

    def _computing(self, record: CycleRecord) -> Outcome:
        share = 1.0 / len(record.committed)
        weights = [(c.addr, share) for c in record.committed]
        return weights, Category.EXECUTION

    # -- columnar fast path (block engine) ---------------------------------------------
    #
    # The OIR mirror is only ever *read* when a sample lands on an
    # empty-ROB cycle, so instead of updating it every cycle the block
    # path reconstructs the latest OIR update at the sampled index
    # straight from the columns: the last committing record at or
    # before *i* (located by bisecting the commit prefix sum) and the
    # last exception record (located by scanning the exception flag
    # mask backwards).  A record that both commits and faults updates
    # the OIR with the commit (``_update_state`` checks commits first),
    # so a committing exception record never wins as an exception --
    # which is exactly the ``le > lc`` test below, since a committing
    # record is always <= the last committing record.

    def _oir_at(self, block, i: int):
        cb = block.commit_base
        v = cb[i + 1]
        lc = bisect_left(cb, v) - 1 if v else -1
        le = block.exc_mask.rfind(1, 0, i + 1)
        if le > lc:
            return block.exception_at(le), _FLAG_EXCEPTION
        if lc >= 0:
            meta = block.commit_meta[v - 1]
            if meta & 0x40:
                flag = _FLAG_MISPREDICT
            elif meta & 0x80:
                flag = _FLAG_FLUSH
            else:
                flag = _FLAG_NONE
            return block.commit_addr[v - 1], flag
        return self._oir_addr, self._oir_flag

    def _block_attribute(self, block, i: int) -> Optional[Outcome]:
        if block.commit_base[i + 1] > block.commit_base[i]:
            return self._block_computing(block, i)
        if not block.rob_empty_at(i):
            head = block.rob_head_at(i)
            return [(head, 1.0)], stall_category(self.program, head)
        addr, flag = self._oir_at(block, i)
        if flag == _FLAG_MISPREDICT:
            return [(addr, 1.0)], Category.MISPREDICT
        if flag in (_FLAG_FLUSH, _FLAG_EXCEPTION):
            return [(addr, 1.0)], Category.MISC_FLUSH
        return None

    def _block_scan_resolve(self, block, i: int) -> Optional[int]:
        # First dispatching record >= i, via the dispatch prefix sum.
        db = block.disp_base
        q = bisect_right(db, db[i], i + 1)
        return q - 1 if q <= block.n else None

    def _block_resolve_outcome(self, block, i: int) -> Outcome:
        first = block.disp_addr[block.disp_base[i]]
        return [(first, 1.0)], Category.FRONTEND

    def _block_update_tail(self, block) -> None:
        if block.n:
            self._oir_addr, self._oir_flag = \
                self._oir_at(block, block.n - 1)

    def _block_computing(self, block, i: int) -> Outcome:
        lo, hi = block.commit_base[i], block.commit_base[i + 1]
        share = 1.0 / (hi - lo)
        weights = [(block.commit_addr[k], share) for k in range(lo, hi)]
        return weights, Category.EXECUTION


class TipIlpProfiler(TipProfiler):
    """TIP 'minus' ILP: a Computing sample goes to one instruction."""

    name = "TIP-ILP"
    ilp_aware = False

    def _computing(self, record: CycleRecord) -> Outcome:
        oldest = record.committed[0]
        return [(oldest.addr, 1.0)], Category.EXECUTION

    def _block_computing(self, block, i: int) -> Outcome:
        oldest = block.commit_addr[block.commit_base[i]]
        return [(oldest, 1.0)], Category.EXECUTION
