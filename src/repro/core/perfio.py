"""perf-style binary sample records (Section 3.1/3.2).

When perf drains TIP's CSRs it writes fixed-size binary records: 40 B of
metadata (core/process/thread ids and friends) followed by the profiler
payload -- the cycle counter and one instruction address for non-ILP
profilers (56 B total), or the cycle counter, the flags CSR and one
address per ROB bank for TIP (88 B on the 4-wide core).  This module
implements that encoding, a session that accumulates raw records, and
the post-processing pass that turns a raw buffer back into samples --
mirroring how a real perf.data file is produced and consumed.

Address slots also encode each address's weight numerator implicitly:
the payload stores the valid addresses, and post-processing splits the
sample evenly across them, exactly as Section 3.1 describes ("add 1/n of
the value in the cycles register to each instruction's counter").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .samples import Category, Sample

#: 40 B of perf metadata: core, pid, tid, time, id (five u64).
_METADATA = struct.Struct("<5Q")
#: Non-ILP payload: cycles + one address.
_BASELINE_PAYLOAD = struct.Struct("<2Q")

#: TIP flag bits within the flags CSR.
FLAG_STALLED = 1 << 0
FLAG_EXCEPTION = 1 << 1
FLAG_FLUSH = 1 << 2
FLAG_MISPREDICTED = 1 << 3
FLAG_FRONTEND = 1 << 4

_CATEGORY_TO_FLAGS = {
    Category.EXECUTION: 0,
    Category.ALU_STALL: FLAG_STALLED,
    Category.LOAD_STALL: FLAG_STALLED,
    Category.STORE_STALL: FLAG_STALLED,
    Category.FRONTEND: FLAG_FRONTEND,
    Category.MISPREDICT: FLAG_MISPREDICTED,
    Category.MISC_FLUSH: FLAG_FLUSH,
}


@dataclass(frozen=True)
class RecordLayout:
    """Sizes of one encoded record for a given configuration."""

    banks: int
    ilp_aware: bool

    @property
    def payload_bytes(self) -> int:
        if self.ilp_aware:
            return (2 + self.banks) * 8  # cycles + flags + addresses
        return _BASELINE_PAYLOAD.size

    @property
    def record_bytes(self) -> int:
        return _METADATA.size + self.payload_bytes


class PerfEncoder:
    """Encodes samples into fixed-size binary records."""

    def __init__(self, banks: int = 4, ilp_aware: bool = True,
                 core_id: int = 0, pid: int = 1, tid: int = 1):
        self.layout = RecordLayout(banks, ilp_aware)
        self.core_id = core_id
        self.pid = pid
        self.tid = tid
        if ilp_aware:
            self._payload = struct.Struct(f"<{2 + banks}Q")
        else:
            self._payload = _BASELINE_PAYLOAD

    def encode(self, sample: Sample) -> bytes:
        metadata = _METADATA.pack(self.core_id, self.pid, self.tid,
                                  sample.cycle, 0)
        addrs = [addr for addr, _ in sample.weights]
        if self.layout.ilp_aware:
            flags = _CATEGORY_TO_FLAGS.get(sample.category, 0)
            slots = (addrs + [0] * self.layout.banks)[:self.layout.banks]
            payload = self._payload.pack(sample.interval, flags, *slots)
        else:
            addr = addrs[0] if addrs else 0
            payload = self._payload.pack(sample.interval, addr)
        return metadata + payload

    def encode_all(self, samples: Iterable[Sample]) -> bytes:
        return b"".join(self.encode(s) for s in samples)


class PerfDecoder:
    """Decodes a raw record buffer back into samples."""

    def __init__(self, banks: int = 4, ilp_aware: bool = True):
        self.layout = RecordLayout(banks, ilp_aware)
        if ilp_aware:
            self._payload = struct.Struct(f"<{2 + banks}Q")
        else:
            self._payload = _BASELINE_PAYLOAD

    def decode(self, buffer: bytes) -> List[Sample]:
        record_size = self.layout.record_bytes
        if len(buffer) % record_size:
            raise ValueError(
                f"buffer length {len(buffer)} is not a multiple of the "
                f"record size {record_size}")
        samples = []
        for offset in range(0, len(buffer), record_size):
            record = buffer[offset:offset + record_size]
            _core, _pid, _tid, cycle, _rsv = _METADATA.unpack_from(record)
            payload = record[_METADATA.size:]
            if self.layout.ilp_aware:
                fields = self._payload.unpack(payload)
                interval, flags = fields[0], fields[1]
                addrs = [a for a in fields[2:] if a]
                category = _flags_to_category(flags)
            else:
                interval, addr = self._payload.unpack(payload)
                addrs = [addr] if addr else []
                category = None
            share = 1.0 / len(addrs) if addrs else 0.0
            samples.append(Sample(cycle, interval,
                                  [(a, share) for a in addrs], category))
        return samples


def _flags_to_category(flags: int) -> Optional[Category]:
    if flags & FLAG_MISPREDICTED:
        return Category.MISPREDICT
    if flags & (FLAG_FLUSH | FLAG_EXCEPTION):
        return Category.MISC_FLUSH
    if flags & FLAG_FRONTEND:
        return Category.FRONTEND
    if flags & FLAG_STALLED:
        return None  # stall type recovered from the binary, not flags
    return Category.EXECUTION


class PerfSession:
    """Accumulates encoded records like perf's memory buffer.

    Wraps a profiler: call :meth:`drain` after the run to pull its
    samples through the binary encoding, then :meth:`profile` to
    post-process them, byte-identical to what a reader of the raw file
    would reconstruct.
    """

    def __init__(self, profiler, banks: int = 4,
                 ilp_aware: Optional[bool] = None):
        if ilp_aware is None:
            ilp_aware = getattr(profiler, "ilp_aware", False)
        self.profiler = profiler
        self.encoder = PerfEncoder(banks, ilp_aware)
        self.decoder = PerfDecoder(banks, ilp_aware)
        self.buffer = b""

    def drain(self) -> bytes:
        self.buffer = self.encoder.encode_all(self.profiler.samples)
        return self.buffer

    @property
    def bytes_per_sample(self) -> int:
        return self.encoder.layout.record_bytes

    def decoded_samples(self) -> List[Sample]:
        if not self.buffer:
            self.drain()
        return self.decoder.decode(self.buffer)

    def profile(self) -> Dict[int, float]:
        """addr -> time profile reconstructed from the raw buffer."""
        profile: Dict[int, float] = {}
        for sample in self.decoded_samples():
            for addr, fraction in sample.weights:
                profile[addr] = profile.get(addr, 0.0) \
                    + sample.interval * fraction
        return profile
