"""Base machinery shared by all sampling profilers.

Every practical profiler consumes the commit-stage trace, keeps whatever
state its hardware would keep, and takes a sample whenever its
:class:`~repro.core.sampling.SampleSchedule` fires.  Some policies cannot
attribute a sample at the sampled cycle (NCI must wait for the next
commit; TIP's drained samples wait for the next dispatch) -- those become
*pending* samples that resolve on a later cycle.  Samples that never
resolve before the run ends keep an empty attribution and count as
misattributed, which is the conservative choice.

Profilers are driven two ways.  The classic *cycle engine* calls
:meth:`SamplingProfiler.on_cycle` once per cycle.  The *block engine*
(:mod:`repro.fastpath`) hands whole columnar
:class:`~repro.fastpath.block.CycleBlock` batches to
:meth:`SamplingProfiler.on_block`; profilers that set ``block_native``
and implement the ``_block_*`` hooks then touch only the cycles that
matter -- sample points and pending-resolution events, located by
bisecting the block's sparse index lists -- instead of paying a Python
call per cycle.  The driver reproduces the cycle engine's semantics
exactly (state update, then pending resolution, then sampling, in
cycle order), so both engines emit bit-identical sample streams.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..cpu.trace import CycleRecord, TraceObserver, shifted_record
from .samples import Attribution, Category, Sample
from .sampling import SampleSchedule

#: Return value of ``_attribute``/``_resolve`` hooks.
Outcome = Tuple[Attribution, Optional[Category]]


class SamplingProfiler(TraceObserver):
    """A statistical profiler driven by a sample schedule."""

    #: Short policy name used in reports ("TIP", "NCI", ...).
    name = "base"
    #: Whether samples may carry multiple addresses (sizes the perf
    #: record, Section 3.2).
    ilp_aware = False
    #: Whether pending-sample resolution depends only on the record
    #: stream, which is what sharded replay requires (see
    #: :mod:`repro.parallel.shard`).  Profilers whose resolution depends
    #: on per-sample state (Software with interrupt skid) clear this.
    shardable = True
    #: Whether this profiler implements the columnar ``_block_*`` hooks.
    #: When clear, ``on_block`` falls back to a loop over ``on_cycle``.
    block_native = False

    def __init__(self, schedule: SampleSchedule):
        self.schedule = schedule
        self.samples: List[Sample] = []
        self._prev_sample_cycle = -1
        self._pending: List[Sample] = []

    # -- subclass hooks ------------------------------------------------------------

    def _update_state(self, record: CycleRecord) -> None:
        """Track whatever hardware state this policy needs."""

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        """Attribute a sample taken at *record*; ``None`` defers it."""
        raise NotImplementedError

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        """Try to resolve pending samples with a later *record*."""
        return None

    # -- trace consumption -----------------------------------------------------------

    def on_cycle(self, record: CycleRecord) -> None:
        self._update_state(record)
        if self._pending:
            outcome = self._resolve(record)
            if outcome is not None:
                weights, category = outcome
                for sample in self._pending:
                    sample.weights = weights
                    sample.category = category
                self._pending.clear()
        if self.schedule.is_sample(record.cycle):
            self._take_sample(record)

    def on_stall_run(self, record: CycleRecord, count: int) -> None:
        """Consume *count* identical stall cycles, visiting only the
        cycles where something can happen.

        For a pure stall record (nothing committed, nothing dispatched,
        no exception) every skipped ``on_cycle`` call would update
        state with an identical record and return: ``_update_state``
        implementations are content-driven (idempotent on identical
        records), ``_resolve`` can only newly fire at cycles named by
        :meth:`_next_resolve_cycle`, and the schedule cannot fire
        before ``schedule.next_sample``.  Records that commit or fault
        fall back to the per-cycle loop.

        Subclasses whose ``_update_state`` is *not* idempotent on
        identical records must override this method (the C002 contract
        check flags block-native profilers that forget).
        """
        if record.committed or record.dispatched \
                or record.exception is not None:
            TraceObserver.on_stall_run(self, record, count)
            return
        end = record.cycle + count
        current = record
        while True:
            self.on_cycle(current)
            nxt = self.schedule.next_sample
            if self._pending:
                resolve = self._next_resolve_cycle(current, end)
                if resolve is not None and resolve < nxt:
                    nxt = resolve
            if nxt >= end:
                break
            current = shifted_record(record, nxt - record.cycle)

    def _next_resolve_cycle(self, record: CycleRecord,
                            end: int) -> Optional[int]:
        """First cycle in ``(record.cycle, end)`` where ``_resolve``
        could newly fire on identical records; ``None`` when resolution
        is content-driven (identical records give identical answers).
        Profilers with time-dependent resolution (interrupt skid)
        override this.
        """
        return None

    def on_finish(self, final_cycle: int) -> None:
        self._pending.clear()

    def _take_sample(self, record: CycleRecord) -> None:
        # Periodic sampling: the sample represents the cycles since the
        # previous sample.  Random sampling draws one sample uniformly
        # within each period-long interval, so the unbiased
        # (Horvitz-Thompson) weight is the constant period -- using the
        # realized spacing would add estimator noise.
        if self.schedule.mode == "random":
            interval = self.schedule.period
        else:
            interval = record.cycle - self._prev_sample_cycle
        self._prev_sample_cycle = record.cycle
        sample = Sample(record.cycle, interval, [], None)
        self.samples.append(sample)
        outcome = self._attribute(record)
        if outcome is None:
            self._pending.append(sample)
        else:
            sample.weights, sample.category = outcome

    # -- columnar block consumption (the fastpath engine) ------------------------------
    #
    # The driver below replays the cycle engine's per-cycle semantics
    # over a CycleBlock while visiting only the cycles where something
    # can happen: the schedule's next sample point (known in advance)
    # and, while samples are pending, the first cycle whose record can
    # resolve them (found by bisecting the block's sparse index lists).
    # Every skipped cycle is one where on_cycle would have updated
    # policy state and returned; the _block_* hooks recompute that
    # state on demand from the columns, and _block_update_tail pins the
    # carried state to the block's final cycle so consecutive blocks
    # (or a switch back to the cycle engine) chain exactly.

    def on_block(self, block) -> None:
        if not self.block_native:
            for record in block.records():
                self.on_cycle(record)
            return
        n = block.n
        if not n:
            return
        start = block.start_cycle
        schedule = self.schedule
        # First index at which a pending sample may resolve.  A sample
        # deferred at index s resolves no earlier than s + 1 (on_cycle
        # tries resolution before sampling); pendings carried in from a
        # previous block may resolve at index 0.
        scan = 0
        while True:
            s = schedule.next_sample - start
            if self._pending:
                r = self._block_scan_resolve(block, scan)
                if r is not None and (s >= n or r <= s):
                    weights, category = \
                        self._block_resolve_outcome(block, r)
                    for sample in self._pending:
                        sample.weights = weights
                        sample.category = category
                    self._pending.clear()
            if s >= n:
                break
            cycle = start + s
            schedule.is_sample(cycle)  # advance past the sample point
            if schedule.mode == "random":
                interval = schedule.period
            else:
                interval = cycle - self._prev_sample_cycle
            self._prev_sample_cycle = cycle
            sample = Sample(cycle, interval, [], None)
            self.samples.append(sample)
            outcome = self._block_attribute(block, s)
            if outcome is None:
                if not self._pending:
                    scan = s + 1
                self._pending.append(sample)
            else:
                sample.weights, sample.category = outcome
        self._block_update_tail(block)

    # -- block hooks (override together with ``block_native = True``) -----------------

    def _block_attribute(self, block, i: int) -> Optional[Outcome]:
        """Columnar twin of ``_attribute`` for the record at index *i*.

        Must account for any state update the record itself would have
        applied (``on_cycle`` updates state before attributing).
        """
        raise NotImplementedError

    def _block_scan_resolve(self, block, i: int) -> Optional[int]:
        """First index ``>= i`` whose record resolves pending samples.

        ``None`` when nothing in the rest of the block resolves them.
        """
        raise NotImplementedError

    def _block_resolve_outcome(self, block, i: int) -> Outcome:
        """The resolution outcome at index *i* (mirrors ``_resolve``,
        including any side effects on policy state)."""
        raise NotImplementedError

    def _block_update_tail(self, block) -> None:
        """Advance carried policy state past the whole block (hook)."""

    # -- sharded replay (snapshot/merge protocol) --------------------------------------
    #
    # A trace split at chunk boundaries can be replayed by parallel
    # workers: each worker builds a fresh profiler, calls
    # ``begin_shard`` with the chunk's carried state, feeds its records
    # through ``on_cycle``, then feeds subsequent records through
    # ``resolve_only`` until no pending samples remain (a pending
    # sample resolves at the first qualifying record after it is taken,
    # wherever that record lives).  ``snapshot`` captures the worker's
    # samples; concatenating shard snapshots in order reproduces the
    # serial sample list bit for bit.

    def begin_shard(self, start_cycle: int, carry) -> None:
        """Prepare to consume records starting at *start_cycle*.

        *carry* is the :class:`~repro.cpu.tracefile.ChunkCarry` of the
        first chunk of the shard.  The schedule is fast-forwarded so
        sampling continues exactly where a serial replay would be.
        """
        self._prev_sample_cycle = self.schedule.fast_forward(start_cycle)
        self._restore_carry(carry)

    def _restore_carry(self, carry) -> None:
        """Restore policy state from carried chunk state (hook)."""

    def shard_settled(self) -> bool:
        """True when no pending samples need run-over records."""
        return not self._pending

    def resolve_only(self, record: CycleRecord) -> bool:
        """Run-over mode: resolve pendings against a post-shard record.

        Called with the records *after* the shard's end until it
        returns True; never takes new samples and never updates policy
        state (records past the boundary belong to the next shard).
        """
        if self._pending:
            outcome = self._resolve(record)
            if outcome is not None:
                weights, category = outcome
                for sample in self._pending:
                    sample.weights = weights
                    sample.category = category
                self._pending.clear()
        return not self._pending

    def snapshot(self) -> dict:
        """Picklable capture of this profiler's collected samples."""
        return {
            "policy": self.name,
            "samples": [(s.cycle, s.interval, list(s.weights), s.category)
                        for s in self.samples],
        }

    def restore_snapshots(self, snapshots) -> None:
        """Fill this (fresh) profiler from ordered shard snapshots."""
        for snap in snapshots:
            for cycle, interval, weights, category in snap["samples"]:
                self.samples.append(
                    Sample(cycle, interval, weights, category))

    # -- results -----------------------------------------------------------------------

    @property
    def sampled_cycles(self) -> int:
        return sum(s.interval for s in self.samples)

    def profile(self) -> dict:
        """Aggregate samples into an addr -> time profile."""
        profile: dict = {}
        for sample in self.samples:
            for addr, fraction in sample.weights:
                profile[addr] = profile.get(addr, 0.0) + \
                    sample.interval * fraction
        return profile

    def __repr__(self) -> str:
        return f"<{self.name} profiler: {len(self.samples)} samples>"
