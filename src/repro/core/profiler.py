"""Base machinery shared by all sampling profilers.

Every practical profiler consumes the commit-stage trace, keeps whatever
state its hardware would keep, and takes a sample whenever its
:class:`~repro.core.sampling.SampleSchedule` fires.  Some policies cannot
attribute a sample at the sampled cycle (NCI must wait for the next
commit; TIP's drained samples wait for the next dispatch) -- those become
*pending* samples that resolve on a later cycle.  Samples that never
resolve before the run ends keep an empty attribution and count as
misattributed, which is the conservative choice.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..cpu.trace import CycleRecord, TraceObserver
from .samples import Attribution, Category, Sample
from .sampling import SampleSchedule

#: Return value of ``_attribute``/``_resolve`` hooks.
Outcome = Tuple[Attribution, Optional[Category]]


class SamplingProfiler(TraceObserver):
    """A statistical profiler driven by a sample schedule."""

    #: Short policy name used in reports ("TIP", "NCI", ...).
    name = "base"
    #: Whether samples may carry multiple addresses (sizes the perf
    #: record, Section 3.2).
    ilp_aware = False

    def __init__(self, schedule: SampleSchedule):
        self.schedule = schedule
        self.samples: List[Sample] = []
        self._prev_sample_cycle = -1
        self._pending: List[Sample] = []

    # -- subclass hooks ------------------------------------------------------------

    def _update_state(self, record: CycleRecord) -> None:
        """Track whatever hardware state this policy needs."""

    def _attribute(self, record: CycleRecord) -> Optional[Outcome]:
        """Attribute a sample taken at *record*; ``None`` defers it."""
        raise NotImplementedError

    def _resolve(self, record: CycleRecord) -> Optional[Outcome]:
        """Try to resolve pending samples with a later *record*."""
        return None

    # -- trace consumption -----------------------------------------------------------

    def on_cycle(self, record: CycleRecord) -> None:
        self._update_state(record)
        if self._pending:
            outcome = self._resolve(record)
            if outcome is not None:
                weights, category = outcome
                for sample in self._pending:
                    sample.weights = weights
                    sample.category = category
                self._pending.clear()
        if self.schedule.is_sample(record.cycle):
            self._take_sample(record)

    def on_finish(self, final_cycle: int) -> None:
        self._pending.clear()

    def _take_sample(self, record: CycleRecord) -> None:
        # Periodic sampling: the sample represents the cycles since the
        # previous sample.  Random sampling draws one sample uniformly
        # within each period-long interval, so the unbiased
        # (Horvitz-Thompson) weight is the constant period -- using the
        # realized spacing would add estimator noise.
        if self.schedule.mode == "random":
            interval = self.schedule.period
        else:
            interval = record.cycle - self._prev_sample_cycle
        self._prev_sample_cycle = record.cycle
        sample = Sample(record.cycle, interval, [], None)
        self.samples.append(sample)
        outcome = self._attribute(record)
        if outcome is None:
            self._pending.append(sample)
        else:
            sample.weights, sample.category = outcome

    # -- results -----------------------------------------------------------------------

    @property
    def sampled_cycles(self) -> int:
        return sum(s.interval for s in self.samples)

    def profile(self) -> dict:
        """Aggregate samples into an addr -> time profile."""
        profile: dict = {}
        for sample in self.samples:
            for addr, fraction in sample.weights:
                profile[addr] = profile.get(addr, 0.0) + \
                    sample.interval * fraction
        return profile

    def __repr__(self) -> str:
        return f"<{self.name} profiler: {len(self.samples)} samples>"
