"""TIP overhead model (Section 3.2).

Analytic reproduction of the paper's hardware- and sampling-overhead
numbers: 57 B of profiler storage for the 4-wide core, 88 B TIP samples
versus 56 B for non-ILP-aware profilers (on top of 40 B of perf metadata
each), 352 KB/s versus 224 KB/s at perf's default 4 kHz, and the
~179 GB/s an Oracle that traces every cycle would generate at 3.2 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.config import CoreConfig
from .sampling import CORE_CLOCK_HZ, DEFAULT_FREQUENCY_HZ

#: Bytes of sample metadata perf attaches (core/process/thread ids, ...).
PERF_METADATA_BYTES = 40
#: Every TIP CSR is 64-bit ("RISC-V's CSR instructions operate on the full
#: architectural bit width").
CSR_BYTES = 8
#: The OIR holds a 64-bit address and a 3-bit flag, rounded up to 9 B.
OIR_BYTES = 9


def tip_storage_bytes(config: CoreConfig) -> int:
    """Total profiler storage: the OIR plus the cycle, flags and per-bank
    address CSRs (57 B for the paper's 4-wide BOOM)."""
    num_csrs = config.rob_banks + 2  # addresses + cycle + flags
    return OIR_BYTES + num_csrs * CSR_BYTES


def sample_payload_bytes(config: CoreConfig, ilp_aware: bool) -> int:
    """Bytes of profiler payload per sample (excluding perf metadata)."""
    if ilp_aware:
        # b instruction addresses, the cycle counter, and the flags CSR.
        return (config.rob_banks + 2) * CSR_BYTES
    # One instruction address and the cycle counter.
    return 2 * CSR_BYTES


def sample_record_bytes(config: CoreConfig, ilp_aware: bool) -> int:
    """Total bytes per sample record including perf metadata."""
    return PERF_METADATA_BYTES + sample_payload_bytes(config, ilp_aware)


def sampling_data_rate(config: CoreConfig, ilp_aware: bool,
                       frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> float:
    """Profiling data rate in bytes/second at *frequency_hz*."""
    return frequency_hz * sample_record_bytes(config, ilp_aware)


def oracle_data_rate(config: CoreConfig,
                     clock_hz: float = CORE_CLOCK_HZ) -> float:
    """Bytes/second an every-cycle Oracle trace would generate.

    Per cycle the Oracle needs the per-bank instruction addresses plus the
    per-bank valid/commit/exception/flush/mispredict flags and pointers
    (one CSR) and the cycle stamp: 56 B/cycle on the 4-wide core, i.e.
    ~179 GB/s at 3.2 GHz.
    """
    per_cycle = (config.rob_banks + 3) * CSR_BYTES
    return clock_hz * per_cycle


@dataclass
class OverheadSummary:
    """All Section 3.2 numbers for one configuration."""

    storage_bytes: int
    tip_sample_bytes: int
    baseline_sample_bytes: int
    tip_rate_bytes_per_s: float
    baseline_rate_bytes_per_s: float
    oracle_rate_bytes_per_s: float

    @property
    def reduction_vs_oracle(self) -> float:
        return self.oracle_rate_bytes_per_s / self.tip_rate_bytes_per_s


def summarize(config: CoreConfig,
              frequency_hz: float = DEFAULT_FREQUENCY_HZ,
              clock_hz: float = CORE_CLOCK_HZ) -> OverheadSummary:
    """Compute the complete Section 3.2 overhead summary."""
    return OverheadSummary(
        storage_bytes=tip_storage_bytes(config),
        tip_sample_bytes=sample_record_bytes(config, True),
        baseline_sample_bytes=sample_record_bytes(config, False),
        tip_rate_bytes_per_s=sampling_data_rate(config, True, frequency_hz),
        baseline_rate_bytes_per_s=sampling_data_rate(config, False,
                                                     frequency_hz),
        oracle_rate_bytes_per_s=oracle_data_rate(config, clock_hz),
    )
