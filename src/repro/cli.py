"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``profile FILE.s``
    Assemble and profile an assembly program with all profilers.
``suite [NAMES...]``
    Run (a subset of) the 27-benchmark suite and print error tables.
``stacks [NAMES...]``
    Print Figure 7-style cycle stacks for benchmarks.
``imagick``
    Run the Section 6 case study (original vs optimized).
``overhead``
    Print the Section 3.2 overhead summary.
``record FILE.s -o trace.bin``
    Simulate once and serialize the commit-stage trace.
``replay trace.bin FILE.s``
    Re-profile a recorded trace without re-simulating.
``lint TARGET...``
    Statically lint assembly files, directories or benchmark names.

``profile``, ``suite``, ``record`` and ``replay`` accept ``--sanitize``
to validate the commit-stage trace against the commit invariants while
it is produced (or replayed), failing fast on the first violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .analysis import (Granularity, render_error_table,
                       render_profile_table, render_stacks_table)
from .core.overhead import summarize
from .cpu.config import CoreConfig
from .harness import default_profilers, run_experiment, run_suite, \
    run_workload
from .isa import assemble
from .lint import TraceInvariantError
from .workloads import build_imagick, build_suite
from .workloads.suite import BENCHMARKS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--period", type=int, default=13,
                        help="sampling period in cycles (default 13)")
    parser.add_argument("--random", action="store_true",
                        help="random instead of periodic sampling")


def _add_sanitize(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sanitize", action="store_true",
                        help="validate the commit trace against the "
                             "commit-stage invariants (fail fast)")


def _profilers(args):
    mode = "random" if args.random else "periodic"
    return default_profilers(args.period, mode=mode)


def _reject_unknown_benchmarks(names: Optional[List[str]]) -> bool:
    """Print any unknown benchmark names to stderr.  True if any."""
    unknown = [name for name in (names or []) if name not in BENCHMARKS]
    if unknown:
        print("unknown benchmark(s): " + ", ".join(unknown),
              file=sys.stderr)
        print("known: " + ", ".join(BENCHMARKS), file=sys.stderr)
    return bool(unknown)


def cmd_profile(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = assemble(source, name=args.file)
    premapped = [(0, 1 << 28)] if args.map_all else None
    result = run_experiment(program, _profilers(args),
                            premapped_data=premapped,
                            sanitize=args.sanitize)
    print(f"{result.stats.committed} instructions, "
          f"{result.stats.cycles} cycles, IPC {result.stats.ipc:.2f}\n")
    if result.sanitizer is not None:
        print(result.sanitizer.summary() + "\n")
    granularity = Granularity(args.granularity)
    profiles = {"Oracle": result.oracle_profile(granularity)}
    for name in result.profilers:
        profiles[name] = result.profile(name, granularity)
    print(render_profile_table(profiles, program=program, top=args.top,
                               title=f"{granularity.value} profile"))
    print()
    errors = {"program": result.errors(granularity)}
    print(render_error_table(errors, title=f"{granularity.value} error"))
    return 0


def cmd_suite(args) -> int:
    if _reject_unknown_benchmarks(args.benchmarks):
        return 2
    names = args.benchmarks or None
    workloads = build_suite(names, scale=args.scale)
    suite = run_suite(workloads, profilers=_profilers(args),
                      verbose=True, sanitize=args.sanitize)
    for granularity in Granularity:
        table = suite.errors(granularity)
        print()
        print(render_error_table(
            table, title=f"{granularity.value}-level error"))
    if args.sanitize:
        print()
        for name, summary in suite.sanitizer_summaries().items():
            print(f"{name}: {summary}")
    return 0


def cmd_stacks(args) -> int:
    if _reject_unknown_benchmarks(args.benchmarks):
        return 2
    names = args.benchmarks or None
    workloads = build_suite(names, scale=args.scale)
    suite = run_suite(workloads, profilers=_profilers(args),
                      verbose=True)
    print()
    print(render_stacks_table(suite.cycle_stacks(),
                              title="cycle stacks (Figure 7)"))
    return 0


def cmd_imagick(args) -> int:
    orig = run_workload(build_imagick(optimized=False), _profilers(args))
    opt = run_workload(build_imagick(optimized=True), _profilers(args))
    print(render_stacks_table({"original": orig.cycle_stack(),
                               "optimized": opt.cycle_stack()},
                              title="Imagick before/after"))
    speedup = orig.stats.cycles / opt.stats.cycles
    print(f"\nspeedup: {speedup:.2f}x (paper: 1.93x), "
          f"IPC {orig.stats.ipc:.2f} -> {opt.stats.ipc:.2f}")
    return 0


def cmd_record(args) -> int:
    from .cpu import Machine, TraceWriter
    with open(args.file) as handle:
        program = assemble(handle.read(), name=args.file)
    premapped = [(0, 1 << 28)] if args.map_all else None
    machine = Machine(program, premapped_data=premapped)
    sanitizer = None
    if args.sanitize:
        from .lint import TraceSanitizer
        sanitizer = TraceSanitizer.for_machine(machine)
        machine.attach(sanitizer)
    with open(args.output, "wb") as out:
        machine.attach(TraceWriter(out, machine.config.rob_banks))
        stats = machine.run()
    print(f"recorded {stats.cycles} cycles "
          f"({stats.committed} instructions) to {args.output}")
    if sanitizer is not None:
        print(sanitizer.summary())
    return 0


def cmd_replay(args) -> int:
    from .analysis import Symbolizer, profile_error
    from .core import OracleProfiler, SampleSchedule
    from .cpu import replay_trace
    from .harness.experiment import POLICIES
    with open(args.program) as handle:
        program = assemble(handle.read(), name=args.program)
    from .kernel import Kernel
    image = Kernel().boot(program)
    schedule = SampleSchedule(args.period)
    profiler = POLICIES[args.policy](schedule, image)
    oracle = OracleProfiler(image,
                            watch_schedules=[SampleSchedule(args.period)])
    observers = [oracle, profiler]
    sanitizer = None
    if args.sanitize:
        from .lint import TraceSanitizer
        sanitizer = TraceSanitizer(program=image)
        observers.append(sanitizer)
    cycles = replay_trace(args.trace, *observers)
    oracle.report.total_cycles = cycles
    granularity = Granularity(args.granularity)
    profiles = {"Oracle": dict(sorted(
        oracle.report.normalized_profile().items()))}
    symbolizer = Symbolizer(image)
    from .analysis import build_profile, normalize
    profiles[args.policy] = normalize(build_profile(
        profiler.samples, symbolizer, granularity))
    error = profile_error(profiler, oracle.report, symbolizer,
                          granularity)
    print(f"replayed {cycles} cycles, {len(profiler.samples)} samples")
    print(f"{args.policy} {granularity.value}-level error: {error:.2%}")
    if sanitizer is not None:
        print(sanitizer.summary())
    return 0


def _lint_targets(targets: List[str]):
    """Resolve lint targets to (label, Program) pairs.

    A target is an assembly file, a directory (linted recursively), a
    suite benchmark name, or ``imagick-orig`` / ``imagick-opt``.
    Unresolvable targets are returned separately.
    """
    programs = []
    bad: List[str] = []
    for target in targets:
        if os.path.isdir(target):
            files = sorted(
                os.path.join(root, name)
                for root, _dirs, names in os.walk(target)
                for name in names if name.endswith(".s"))
            if not files:
                bad.append(f"{target} (no .s files)")
            for path in files:
                with open(path) as handle:
                    programs.append(
                        (path, assemble(handle.read(), name=path)))
        elif os.path.isfile(target):
            with open(target) as handle:
                programs.append(
                    (target, assemble(handle.read(), name=target)))
        elif target in ("imagick-orig", "imagick-opt"):
            workload = build_imagick(optimized=target.endswith("-opt"))
            programs.append((target, workload.program))
        elif target in BENCHMARKS:
            workload, = build_suite([target], scale=0.1)
            programs.append((target, workload.program))
        else:
            bad.append(target)
    return programs, bad


def cmd_lint(args) -> int:
    from .lint import lint_program
    programs, bad = _lint_targets(args.targets)
    if bad:
        print("cannot lint: " + ", ".join(bad), file=sys.stderr)
        return 2
    reports = [lint_program(program) for _label, program in programs]
    if args.json:
        print(json.dumps([report.to_dict() for report in reports],
                         indent=2))
    else:
        for report in reports:
            print(report.render())
    return 1 if any(report.errors for report in reports) else 0


def cmd_overhead(_args) -> int:
    summary = summarize(CoreConfig.boom_4wide())
    print(f"profiler storage:       {summary.storage_bytes} B")
    print(f"TIP sample record:      {summary.tip_sample_bytes} B")
    print(f"baseline sample record: {summary.baseline_sample_bytes} B")
    print(f"TIP data rate @4kHz:    "
          f"{summary.tip_rate_bytes_per_s / 1000:.0f} KB/s")
    print(f"baseline rate @4kHz:    "
          f"{summary.baseline_rate_bytes_per_s / 1000:.0f} KB/s")
    print(f"Oracle trace rate:      "
          f"{summary.oracle_rate_bytes_per_s / 1e9:.1f} GB/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TIP (MICRO 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser("profile", help="profile an assembly file")
    profile.add_argument("file")
    profile.add_argument("--granularity", default="instruction",
                         choices=[g.value for g in Granularity])
    profile.add_argument("--top", type=int, default=15)
    profile.add_argument("--map-all", action="store_true",
                         help="premap the whole data address space")
    _add_common(profile)
    _add_sanitize(profile)
    profile.set_defaults(func=cmd_profile)

    suite = sub.add_parser("suite", help="run the benchmark suite")
    suite.add_argument("benchmarks", nargs="*")
    suite.add_argument("--scale", type=float, default=0.5)
    _add_common(suite)
    _add_sanitize(suite)
    suite.set_defaults(func=cmd_suite)

    stacks = sub.add_parser("stacks", help="print cycle stacks")
    stacks.add_argument("benchmarks", nargs="*")
    stacks.add_argument("--scale", type=float, default=0.5)
    _add_common(stacks)
    stacks.set_defaults(func=cmd_stacks)

    imagick = sub.add_parser("imagick", help="run the case study")
    _add_common(imagick)
    imagick.set_defaults(func=cmd_imagick)

    overhead = sub.add_parser("overhead",
                              help="Section 3.2 overhead summary")
    overhead.set_defaults(func=cmd_overhead)

    record = sub.add_parser("record", help="record a commit-stage trace")
    record.add_argument("file")
    record.add_argument("-o", "--output", default="trace.tiptrace")
    record.add_argument("--map-all", action="store_true")
    _add_sanitize(record)
    record.set_defaults(func=cmd_record)

    replay = sub.add_parser("replay", help="re-profile a recorded trace")
    replay.add_argument("trace")
    replay.add_argument("program")
    replay.add_argument("--policy", default="TIP",
                        choices=["Software", "Dispatch", "LCI", "NCI",
                                 "NCI+ILP", "TIP-ILP", "TIP"])
    replay.add_argument("--granularity", default="instruction",
                        choices=[g.value for g in Granularity])
    _add_common(replay)
    _add_sanitize(replay)
    replay.set_defaults(func=cmd_replay)

    lint = sub.add_parser(
        "lint", help="statically lint programs",
        description="Lint assembly files, directories of .s files, "
                    "suite benchmark names, or imagick-orig/imagick-opt.")
    lint.add_argument("targets", nargs="+")
    lint.add_argument("--json", action="store_true",
                      help="emit diagnostics as JSON")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TraceInvariantError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
