"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``profile FILE.s``
    Assemble and profile an assembly program with all profilers.
``suite [NAMES...]``
    Run (a subset of) the 27-benchmark suite and print error tables.
``stacks [NAMES...]``
    Print Figure 7-style cycle stacks for benchmarks.
``imagick``
    Run the Section 6 case study (original vs optimized).
``overhead``
    Print the Section 3.2 overhead summary.
``record FILE.s -o trace.bin``
    Simulate once and serialize the commit-stage trace (chunk-indexed
    v2 by default; ``--format v1`` for the legacy flat stream).
``replay trace.bin FILE.s``
    Re-profile a recorded trace without re-simulating; ``--jobs N``
    shards a v2 trace over worker processes and ``--engine`` picks
    columnar-block or per-record consumption (bit-identical results).
``convert-trace trace.bin -o trace2.bin``
    Re-encode a v1 trace in the chunk-indexed v2 format.
``bench``
    Time the simulate/record/replay/suite pipeline and write
    ``BENCH_pipeline.json``.
``bench --trace trace.bin --program FILE.s``
    Time the cycle-vs-block replay engines on a recorded trace and
    write ``BENCH_hotpath.json`` (``--quick`` for CI smoke runs).
``bench --sim``
    Time single-stepping vs the event-driven fast path vs a warm
    simulation-cache hit and write ``BENCH_sim.json``; fails if any
    path is not bit-identical to single-stepping.
``cache stats|clear|verify``
    Inspect, empty or checksum-verify the simulation cache
    (``~/.cache/repro`` or ``--cache-dir``/``$REPRO_CACHE_DIR``).
``serve``
    Run the profiling job server: a long-lived asyncio HTTP/JSON
    daemon that coalesces duplicate submissions by content key, runs
    misses on worker processes with timeout/retry/cancel, and streams
    NDJSON progress events to any number of clients.
``submit TARGET --server HOST:PORT``
    Submit an assembly file, suite benchmark or the imagick case study
    to a running server and wait for (or stream) the report;
    ``--stats`` prints the server's queue/cache/worker health.
``lint TARGET...``
    Statically lint assembly files, directories or benchmark names;
    ``--list-rules`` prints the rule registry and ``--cost`` the
    abstract interpreter's static cycle-cost expectation.
``annotate TARGET``
    Profile TARGET once and diff the measured per-instruction
    attribution against the static cost model, flagging instructions
    whose dynamic share the static expectation cannot explain.
``optimize TARGET``
    Apply dataflow-proven rewrites suggested by the linter (flush-pair
    removal, invariant-flush hoisting, dead-store deletion,
    const-unreachable pruning), verify the transformed program against
    the reference interpreter, and measure the speedup on the
    out-of-order core.

``profile``, ``suite``, ``record`` and ``replay`` accept ``--sanitize``
to validate the commit-stage trace against the commit invariants while
it is produced (or replayed), failing fast on the first violation.
``suite --jobs N`` simulates benchmarks on N worker processes.

``profile``, ``suite`` and ``record`` accept ``--sim step|fast``
(default ``fast``: event-driven stall fast-forwarding, bit-identical
to stepping; ``--paranoid`` cross-checks every fast-forwarded region).
``profile`` and ``suite`` accept ``--cache``/``--cache-dir`` to reuse
the traces of previous identical runs instead of re-simulating.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .analysis import (Granularity, render_error_table,
                       render_profile_table, render_stacks_table)
from .core.overhead import summarize
from .cpu.core import MaxCyclesExceeded
from .cpu.tracefile import DEFAULT_CHUNK_CYCLES
from .cpu.config import CoreConfig
from .harness import default_profilers, run_experiment, run_suite, \
    run_workload
from .isa import assemble
from .lint import TraceInvariantError
from .workloads import build_imagick, build_suite
from .workloads.suite import BENCHMARKS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--period", type=int, default=13,
                        help="sampling period in cycles (default 13)")
    parser.add_argument("--random", action="store_true",
                        help="random instead of periodic sampling")


def _add_sanitize(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sanitize", action="store_true",
                        help="validate the commit trace against the "
                             "commit-stage invariants (fail fast)")


def _add_sim(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sim", default="fast",
                        choices=["fast", "step"],
                        help="simulation mode: event-driven stall "
                             "fast-forward (default; bit-identical) "
                             "or plain single-stepping")
    parser.add_argument("--paranoid", action="store_true",
                        help="cross-check every fast-forwarded region "
                             "against single-stepping")


def _add_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache", action="store_true", default=None,
                        help="reuse/record simulation results in the "
                             "content-addressed cache")
    parser.add_argument("--no-cache", dest="cache",
                        action="store_false",
                        help="disable the simulation cache")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (implies --cache; default "
                             "~/.cache/repro or $REPRO_CACHE_DIR)")


def _cache_arg(args):
    """The ``cache=`` value for the harness from the CLI flags."""
    enabled = args.cache if args.cache is not None \
        else args.cache_dir is not None
    if not enabled:
        return None
    return args.cache_dir or True


def _profilers(args):
    mode = "random" if args.random else "periodic"
    return default_profilers(args.period, mode=mode)


def _reject_unknown_benchmarks(names: Optional[List[str]]) -> bool:
    """Print any unknown benchmark names to stderr.  True if any."""
    unknown = [name for name in (names or []) if name not in BENCHMARKS]
    if unknown:
        print("unknown benchmark(s): " + ", ".join(unknown),
              file=sys.stderr)
        print("known: " + ", ".join(BENCHMARKS), file=sys.stderr)
    return bool(unknown)


def cmd_profile(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = assemble(source, name=args.file)
    premapped = [(0, 1 << 28)] if args.map_all else None
    result = run_experiment(program, _profilers(args),
                            premapped_data=premapped,
                            sanitize=args.sanitize, sim=args.sim,
                            paranoid=args.paranoid,
                            cache=_cache_arg(args))
    cached = " (simulation cache hit)" if result.cached else ""
    print(f"{result.stats.committed} instructions, "
          f"{result.stats.cycles} cycles, IPC {result.stats.ipc:.2f}"
          f"{cached}")
    stats = result.stats
    if stats.steady_state_cycles and stats.cycles:
        share = stats.steady_state_cycles / stats.cycles
        print(f"steady-state memoization: "
              f"{stats.steady_state_iterations} iterations, "
              f"{stats.steady_state_cycles} cycles ({share:.0%} of run)")
    print()
    if result.sanitizer is not None:
        print(result.sanitizer.summary() + "\n")
    granularity = Granularity(args.granularity)
    profiles = {"Oracle": result.oracle_profile(granularity)}
    for name in result.profilers:
        profiles[name] = result.profile(name, granularity)
    print(render_profile_table(profiles, program=program, top=args.top,
                               title=f"{granularity.value} profile"))
    print()
    errors = {"program": result.errors(granularity)}
    print(render_error_table(errors, title=f"{granularity.value} error"))
    return 0


def cmd_suite(args) -> int:
    if _reject_unknown_benchmarks(args.benchmarks):
        return 2
    names = args.benchmarks or None
    workloads = build_suite(names, scale=args.scale)
    suite = run_suite(workloads, profilers=_profilers(args),
                      scale=args.scale, verbose=True,
                      sanitize=args.sanitize, jobs=args.jobs,
                      timeout=args.timeout, retries=args.retries,
                      sim=args.sim, paranoid=args.paranoid,
                      cache=_cache_arg(args))
    hits = sum(1 for result in suite.results.values() if result.cached)
    if hits:
        print(f"[suite] {hits} simulation cache hit(s)")
    for granularity in Granularity:
        table = suite.errors(granularity)
        print()
        print(render_error_table(
            table, title=f"{granularity.value}-level error"))
    if args.sanitize:
        print()
        for name, summary in suite.sanitizer_summaries().items():
            print(f"{name}: {summary}")
    if suite.failures:
        print()
        for failure in suite.failures.values():
            print(f"FAILED {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_stacks(args) -> int:
    if _reject_unknown_benchmarks(args.benchmarks):
        return 2
    names = args.benchmarks or None
    workloads = build_suite(names, scale=args.scale)
    suite = run_suite(workloads, profilers=_profilers(args),
                      verbose=True)
    print()
    print(render_stacks_table(suite.cycle_stacks(),
                              title="cycle stacks (Figure 7)"))
    return 0


def cmd_imagick(args) -> int:
    orig = run_workload(build_imagick(optimized=False), _profilers(args))
    opt = run_workload(build_imagick(optimized=True), _profilers(args))
    print(render_stacks_table({"original": orig.cycle_stack(),
                               "optimized": opt.cycle_stack()},
                              title="Imagick before/after"))
    speedup = orig.stats.cycles / opt.stats.cycles
    print(f"\nspeedup: {speedup:.2f}x (paper: 1.93x), "
          f"IPC {orig.stats.ipc:.2f} -> {opt.stats.ipc:.2f}")
    return 0


def cmd_record(args) -> int:
    from .cpu import Machine, TraceWriter, TraceWriterV2, TraceWriterV3
    with open(args.file) as handle:
        program = assemble(handle.read(), name=args.file)
    premapped = [(0, 1 << 28)] if args.map_all else None
    machine = Machine(program, premapped_data=premapped)
    sanitizer = None
    if args.sanitize:
        from .lint import TraceSanitizer
        sanitizer = TraceSanitizer.for_machine(machine)
        machine.attach(sanitizer)
    if args.format == "v1":
        with open(args.output, "wb") as out:
            machine.attach(TraceWriter(out, machine.config.rob_banks))
            stats = machine.run(sim=args.sim, paranoid=args.paranoid)
    else:
        # Path mode: the chunked writers are atomic -- a killed run
        # never leaves a truncated trace at the destination.
        writer_cls = TraceWriterV2 if args.format == "v2" \
            else TraceWriterV3
        writer = writer_cls(args.output, machine.config.rob_banks,
                            chunk_cycles=args.chunk_cycles,
                            compress=args.compress)
        machine.attach(writer)
        try:
            stats = machine.run(sim=args.sim, paranoid=args.paranoid)
        except BaseException:
            writer.abort()
            raise
    print(f"recorded {stats.cycles} cycles "
          f"({stats.committed} instructions) to {args.output} "
          f"[{args.format}]")
    if sanitizer is not None:
        print(sanitizer.summary())
    return 0


def cmd_replay(args) -> int:
    from .analysis import profile_error
    from .harness import ProfilerConfig, replay_experiment
    from .kernel import Kernel
    from .parallel import ProgramSpec
    with open(args.program) as handle:
        source = handle.read()
    program = assemble(source, name=args.program)
    image = Kernel().boot(program)
    mode = "random" if args.random else "periodic"
    configs = [ProfilerConfig(args.policy, args.period, mode)]
    spec = ProgramSpec(kind="asm", source=source, name=args.program)
    result = replay_experiment(args.trace, image, configs,
                               sanitize=args.sanitize, jobs=args.jobs,
                               spec=spec, engine=args.engine)
    outcome = result.replay
    profiler = result.profilers[args.policy]
    granularity = Granularity(args.granularity)
    error = profile_error(profiler, result.oracle, result.symbolizer,
                          granularity)
    print(f"replayed {outcome.cycles} cycles, "
          f"{len(profiler.samples)} samples "
          f"({outcome.mode}, {outcome.shards} shard(s), "
          f"{outcome.engine} engine)")
    if outcome.fallback_reason:
        print(f"note: serial fallback: {outcome.fallback_reason}")
    print(f"{args.policy} {granularity.value}-level error: {error:.2%}")
    if result.sanitizer is not None:
        print(result.sanitizer.summary())
    return 0


def cmd_convert_trace(args) -> int:
    from .cpu import convert_trace
    version = int(args.to[1:])
    records = convert_trace(args.trace, args.output, version=version,
                            chunk_cycles=args.chunk_cycles,
                            compress=args.compress)
    print(f"converted {records} records to {args.output} [{args.to}]")
    return 0


def cmd_bench(args) -> int:
    if args.sim:
        return _cmd_bench_sim(args)
    if args.trace:
        if not args.program:
            print("--trace requires --program", file=sys.stderr)
            return 2
        return _cmd_bench_hotpath(args)
    from .parallel import render_bench, run_bench
    benchmarks = args.benchmarks or None
    if _reject_unknown_benchmarks(benchmarks):
        return 2
    from .parallel.bench import DEFAULT_BENCHMARKS
    result = run_bench(output=args.output,
                       benchmarks=benchmarks or DEFAULT_BENCHMARKS,
                       scale=args.scale, jobs=args.jobs,
                       chunk_cycles=args.chunk_cycles,
                       compress=args.compress, verbose=True)
    print(render_bench(result))
    return 0 if result["checksums_equal"] else 1


def _cmd_bench_sim(args) -> int:
    from .simfast import render_sim_bench, run_sim_bench
    from .simfast.bench import SIM_BENCHMARKS
    benchmarks = args.benchmarks or list(SIM_BENCHMARKS)
    if _reject_unknown_benchmarks(benchmarks):
        return 2
    result = run_sim_bench(benchmarks, output=args.sim_output,
                           quick=args.quick, verbose=True)
    print(render_sim_bench(result))
    return 0 if result["checksums_equal"] else 1


def cmd_cache(args) -> int:
    from .simfast import SimCache
    cache = SimCache(args.cache_dir)
    if args.action == "stats":
        info = cache.stats()
        print(f"{info['root']}: {info['entries']} entr"
              f"{'y' if info['entries'] == 1 else 'ies'}, "
              f"{info['bytes'] / 1e6:.1f} MB "
              f"(cap {info['max_bytes'] / 1e6:.0f} MB)")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} file(s) from {cache.root}")
        return 0
    results = cache.verify(remove=args.remove)
    bad = sorted(key for key, ok in results.items() if not ok)
    for key in bad:
        print(f"BAD {key}" + (" (removed)" if args.remove else ""))
    print(f"{len(results) - len(bad)}/{len(results)} entries OK")
    return 1 if bad and not args.remove else 0


def _cmd_bench_hotpath(args) -> int:
    from .fastpath import render_hotpath_bench, run_hotpath_bench
    from .kernel import Kernel
    with open(args.program) as handle:
        source = handle.read()
    image = Kernel().boot(assemble(source, name=args.program))
    mode = "random" if args.random else "periodic"
    result = run_hotpath_bench(args.trace, image,
                               output=args.hotpath_output,
                               period=args.period, mode=mode,
                               seed=args.seed, quick=args.quick,
                               verbose=True)
    print(render_hotpath_bench(result))
    return 0 if result["checksums_equal"] else 1


def _lint_targets(targets: List[str]):
    """Resolve lint targets to (label, Program, premapped) triples.

    A target is an assembly file, a directory (linted recursively), a
    suite benchmark name, or ``imagick-orig`` / ``imagick-opt``.
    Workload targets carry their premapped data regions so the
    abstract interpreter's bounds rules see the real memory map.
    Unresolvable targets are returned separately.
    """
    programs = []
    bad: List[str] = []
    for target in targets:
        if os.path.isdir(target):
            files = sorted(
                os.path.join(root, name)
                for root, _dirs, names in os.walk(target)
                for name in names if name.endswith(".s"))
            if not files:
                bad.append(f"{target} (no .s files)")
            for path in files:
                with open(path) as handle:
                    programs.append(
                        (path, assemble(handle.read(), name=path), ()))
        elif os.path.isfile(target):
            with open(target) as handle:
                programs.append(
                    (target, assemble(handle.read(), name=target), ()))
        elif target in ("imagick-orig", "imagick-opt"):
            workload = build_imagick(optimized=target.endswith("-opt"))
            programs.append((target, workload.program,
                             tuple(workload.premapped)))
        elif target in BENCHMARKS:
            workload, = build_suite([target], scale=0.1)
            programs.append((target, workload.program,
                             tuple(workload.premapped)))
        else:
            bad.append(target)
    return programs, bad


def _list_rules(fmt: str, dataflow: bool) -> int:
    """``repro lint --list-rules``: print the rule registry."""
    from .lint import Severity
    from .lint.rules import DATAFLOW_RULE_IDS, RULES_BY_ID
    from .lint.absint.rules import ABSINT_RULE_IDS
    rows = []
    for rule_id in sorted(RULES_BY_ID):
        rule = RULES_BY_ID[rule_id]
        if rule_id in ABSINT_RULE_IDS:
            tier = "absint"
        elif rule_id in DATAFLOW_RULE_IDS:
            tier = "dataflow"
        else:
            tier = "structural"
        if not dataflow and tier != "structural":
            continue
        rows.append({"id": rule_id, "name": rule.name,
                     "severity": rule.severity.value
                     if isinstance(rule.severity, Severity)
                     else str(rule.severity),
                     "tier": tier,
                     "description": rule.description})
    if fmt == "json":
        print(json.dumps(rows, indent=2))
        return 0
    for row in rows:
        print(f"{row['id']}  {row['severity']:<7}  {row['tier']:<10}  "
              f"{row['name']}: {row['description']}")
    return 0


def cmd_lint(args) -> int:
    """Exit codes: 0 clean, 1 diagnostics found, 2 usage/internal error.

    Without ``--strict`` only error-severity diagnostics exit 1;
    with it any diagnostic does.
    """
    fmt = "json" if args.json else (args.format or "text")
    if args.list_rules:
        return _list_rules(fmt, args.dataflow)
    if not args.targets:
        print("lint: a TARGET (or --list-rules) is required",
              file=sys.stderr)
        return 2
    if args.observers:
        return _lint_observers(args, fmt)
    from .isa.assembler import AssemblerError
    from .lint import Linter
    try:
        programs, bad = _lint_targets(args.targets)
    except (AssemblerError, OSError) as exc:
        print(f"cannot lint: {exc}", file=sys.stderr)
        return 2
    if bad:
        print("cannot lint: " + ", ".join(bad), file=sys.stderr)
        return 2
    if args.cost:
        return _lint_cost(programs, fmt, args.top)
    linter = Linter(dataflow=args.dataflow)
    reports = [linter.run(program,
                          path=label if os.path.isfile(label) else None,
                          honor_ignores=not args.no_ignores,
                          regions=premapped)
               for label, program, premapped in programs]
    if fmt == "json":
        print(json.dumps([report.to_dict() for report in reports],
                         indent=2))
    else:
        for report in reports:
            print(report.render())
    if any(report.errors for report in reports):
        return 1
    if args.strict and any(report.diagnostics for report in reports):
        return 1
    return 0


def _lint_observers(args, fmt: str) -> int:
    """``repro lint --observers``: contract-check Python sources."""
    from .lint.contracts import check_observer_contracts
    bad = [target for target in args.targets
           if not os.path.exists(target)]
    if bad:
        print("cannot lint: " + ", ".join(bad), file=sys.stderr)
        return 2
    report = check_observer_contracts(args.targets)
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if report.errors:
        return 1
    if args.strict and report.diagnostics:
        return 1
    return 0


def _lint_cost(programs, fmt: str, top: Optional[int]) -> int:
    """``repro lint --cost``: print the static cost expectation."""
    from .lint import static_cost_report
    from .lint.cfg import build_cfg
    from .lint.context import LintContext
    payload = []
    for label, program, premapped in programs:
        ctx = LintContext(program, build_cfg(program),
                          regions=tuple(premapped))
        report = static_cost_report(ctx)
        if fmt == "json":
            payload.append({"target": label, **report.to_dict()})
        else:
            print(f"{label}:")
            print(report.render(top=top))
            print()
    if fmt == "json":
        print(json.dumps(payload, indent=2))
    return 0


def cmd_annotate(args) -> int:
    """Exit codes: 0 report produced (1 with --strict if any
    instruction diverges), 2 usage/internal error."""
    from .analysis import annotate_profile
    from .isa.assembler import AssemblerError
    try:
        resolved = _optimize_target(args.target, args.scale)
    except (AssemblerError, OSError) as exc:
        print(f"cannot annotate: {exc}", file=sys.stderr)
        return 2
    if resolved is None:
        print(f"cannot annotate: unknown target {args.target!r}",
              file=sys.stderr)
        return 2
    label, program, premapped = resolved

    mode = "random" if args.random else "periodic"
    profilers = default_profilers(args.period, mode=mode,
                                  policies=[args.policy])
    result = run_experiment(program, profilers,
                            premapped_data=list(premapped) or None,
                            sim=args.sim, paranoid=args.paranoid,
                            cache=_cache_arg(args))
    profile = result.profile(args.policy, Granularity.INSTRUCTION)
    report = annotate_profile(program, profile, target=label,
                              policy=args.policy,
                              regions=tuple(premapped),
                              factor=args.factor, margin=args.margin)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render(top=args.top))
        if args.output:
            print(f"wrote report to {args.output}")
    if args.strict and report.divergent:
        return 1
    return 0


def _optimize_target(target: str, scale: float):
    """Resolve an optimize target to (label, Program, premapped)."""
    if os.path.isfile(target):
        with open(target) as handle:
            return target, assemble(handle.read(), name=target), []
    if target in ("imagick-orig", "imagick-opt"):
        workload = build_imagick(optimized=target.endswith("-opt"))
        return target, workload.program, workload.premapped
    if target in BENCHMARKS:
        workload, = build_suite([target], scale=scale)
        return target, workload.program, workload.premapped
    return None


def cmd_optimize(args) -> int:
    """Exit codes: 0 optimized and verified, 1 a check failed,
    2 usage/internal error."""
    from .isa import disassemble
    from .isa.assembler import AssemblerError
    from .opt import (diff_architectural, measure_speedup,
                      optimize_program)
    try:
        resolved = _optimize_target(args.target, args.scale)
    except (AssemblerError, OSError) as exc:
        print(f"cannot optimize: {exc}", file=sys.stderr)
        return 2
    if resolved is None:
        print(f"cannot optimize: unknown target {args.target!r}",
              file=sys.stderr)
        return 2
    label, program, premapped = resolved

    result = optimize_program(program, max_passes=args.max_passes,
                              honor_ignores=not args.no_ignores)
    report = {"target": label, "optimization": result.to_dict()}
    failed = False

    differential = diff_architectural(program, result.program,
                                      trials=args.trials)
    report["differential"] = differential.to_dict()
    if not differential.identical:
        failed = True

    speedup = None
    if not args.no_measure and result.changed \
            and differential.identical:
        speedup = measure_speedup(program, result.program,
                                  premapped_data=premapped or None,
                                  sim=args.sim,
                                  cache=_cache_arg(args))
        report["speedup"] = speedup.to_dict()
        if args.min_speedup is not None \
                and speedup.speedup < args.min_speedup:
            failed = True

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(disassemble(result.program))
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(result.render())
        print(differential.render())
        if speedup is not None:
            print(speedup.render())
        if args.min_speedup is not None and speedup is not None \
                and speedup.speedup < args.min_speedup:
            print(f"FAILED: speedup {speedup.speedup:.2f}x below "
                  f"required {args.min_speedup:.2f}x")
        if args.output:
            print(f"wrote optimized assembly to {args.output}")
        if args.report:
            print(f"wrote report to {args.report}")
    return 1 if failed else 0


def cmd_serve(args) -> int:
    import asyncio

    from .serve import ProfileServer
    enabled = args.cache if args.cache is not None else True
    cache = (args.cache_dir or True) if enabled else None
    server = ProfileServer(host=args.host, port=args.port,
                           workers=args.workers, retries=args.retries,
                           cache=cache, job_timeout=args.job_timeout)

    async def _main() -> None:
        host, port = await server.start()
        state = "on" if server.cache is not None else "off"
        print(f"serving on http://{host}:{port} "
              f"({args.workers} worker(s), cache {state})", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    return 0


def _submit_spec(args):
    """Build the JobSpec for a submit target (None if unresolvable)."""
    from .parallel import ProgramSpec
    from .serve import JobSpec
    mode = "random" if args.random else "periodic"
    common = dict(period=args.period, mode=mode)
    if os.path.isfile(args.target):
        with open(args.target) as handle:
            source = handle.read()
        spec = JobSpec.for_source(source, name=args.target,
                                  premap_all=args.map_all, **common)
    elif args.target in ("imagick-orig", "imagick-opt"):
        from .serve.jobs import _default_profilers
        program = ProgramSpec(kind="imagick", name=args.target,
                              optimized=args.target.endswith("-opt"))
        spec = JobSpec(program=program,
                       profilers=_default_profilers(**common))
    elif args.target in BENCHMARKS:
        spec = JobSpec.for_benchmark(args.target, scale=args.scale,
                                     **common)
    else:
        return None
    if args.max_cycles is not None or args.job_timeout is not None:
        from dataclasses import replace
        spec = replace(
            spec,
            max_cycles=(args.max_cycles if args.max_cycles is not None
                        else spec.max_cycles),
            timeout=args.job_timeout)
    return spec


def cmd_submit(args) -> int:
    """Exit codes: 0 report received, 1 job failed/cancelled,
    2 usage/connection error."""
    from .serve import ClientError, JobFailed, ServeClient
    try:
        client = ServeClient.from_address(args.server)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.cancel:
            reply = client.cancel(args.cancel)
            print(f"{reply['job']}: {reply['state']}")
            return 0
        if not args.target:
            print("submit: a TARGET (or --stats/--cancel) is required",
                  file=sys.stderr)
            return 2
        spec = _submit_spec(args)
        if spec is None:
            print(f"unknown target {args.target!r} (not a file, suite "
                  f"benchmark, or imagick-orig/imagick-opt)",
                  file=sys.stderr)
            return 2
        job, coalesced = client.submit(spec)
        note = " (coalesced onto an in-flight duplicate)" \
            if coalesced else ""
        print(f"job {job}{note}", file=sys.stderr)
        if args.no_wait:
            print(job)
            return 0
        if args.stream:
            for event in client.stream(job):
                print(json.dumps(event, sort_keys=True),
                      file=sys.stderr)
        info = client.wait(job, timeout=args.timeout)
    except JobFailed as exc:  # includes JobCancelled
        print(str(exc), file=sys.stderr)
        return 1
    except (ClientError, TimeoutError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot reach server {args.server}: {exc}",
              file=sys.stderr)
        return 2
    for warning in info.get("warnings", ()):
        print(f"warning: {warning}", file=sys.stderr)
    report = info["report"]
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    stats = report.get("stats") or {}
    cached = " (simulation cache hit)" if report.get("cached") else ""
    print(f"{stats.get('committed', '?')} instructions, "
          f"{stats.get('cycles', '?')} cycles, "
          f"IPC {report.get('ipc') or 0.0:.2f}{cached}")
    if stats.get("steady_state_cycles") and stats.get("cycles"):
        share = stats["steady_state_cycles"] / stats["cycles"]
        print(f"steady-state memoization: "
              f"{stats.get('steady_state_iterations', 0)} iterations, "
              f"{stats['steady_state_cycles']} cycles "
              f"({share:.0%} of run)")
    print()
    if "sanitizer" in report:
        print(report["sanitizer"] + "\n")
    errors = {args.target: report["errors"]["instruction"]}
    print(render_error_table(errors, title="instruction error"))
    return 0


def cmd_overhead(_args) -> int:
    summary = summarize(CoreConfig.boom_4wide())
    print(f"profiler storage:       {summary.storage_bytes} B")
    print(f"TIP sample record:      {summary.tip_sample_bytes} B")
    print(f"baseline sample record: {summary.baseline_sample_bytes} B")
    print(f"TIP data rate @4kHz:    "
          f"{summary.tip_rate_bytes_per_s / 1000:.0f} KB/s")
    print(f"baseline rate @4kHz:    "
          f"{summary.baseline_rate_bytes_per_s / 1000:.0f} KB/s")
    print(f"Oracle trace rate:      "
          f"{summary.oracle_rate_bytes_per_s / 1e9:.1f} GB/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TIP (MICRO 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser("profile", help="profile an assembly file")
    profile.add_argument("file")
    profile.add_argument("--granularity", default="instruction",
                         choices=[g.value for g in Granularity])
    profile.add_argument("--top", type=int, default=15)
    profile.add_argument("--map-all", action="store_true",
                         help="premap the whole data address space")
    _add_common(profile)
    _add_sanitize(profile)
    _add_sim(profile)
    _add_cache(profile)
    profile.set_defaults(func=cmd_profile)

    suite = sub.add_parser("suite", help="run the benchmark suite")
    suite.add_argument("benchmarks", nargs="*")
    suite.add_argument("--scale", type=float, default=0.5)
    suite.add_argument("--jobs", type=int, default=1,
                       help="simulate benchmarks on N worker processes")
    suite.add_argument("--timeout", type=float, default=None,
                       help="per-benchmark wall-clock budget (seconds)")
    suite.add_argument("--retries", type=int, default=1,
                       help="extra attempts for a failed worker")
    _add_common(suite)
    _add_sanitize(suite)
    _add_sim(suite)
    _add_cache(suite)
    suite.set_defaults(func=cmd_suite)

    stacks = sub.add_parser("stacks", help="print cycle stacks")
    stacks.add_argument("benchmarks", nargs="*")
    stacks.add_argument("--scale", type=float, default=0.5)
    _add_common(stacks)
    stacks.set_defaults(func=cmd_stacks)

    imagick = sub.add_parser("imagick", help="run the case study")
    _add_common(imagick)
    imagick.set_defaults(func=cmd_imagick)

    overhead = sub.add_parser("overhead",
                              help="Section 3.2 overhead summary")
    overhead.set_defaults(func=cmd_overhead)

    serve = sub.add_parser(
        "serve", help="run the profiling job server",
        description="Long-running asyncio HTTP/JSON daemon: coalesces "
                    "duplicate submissions by content key, runs misses "
                    "on worker processes, streams NDJSON progress. "
                    "The simulation cache is ON by default here "
                    "(--no-cache to disable).")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8763,
                       help="listen port (0 = ephemeral; default 8763)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent worker processes")
    serve.add_argument("--retries", type=int, default=1,
                       help="extra attempts for a crashed/hung worker")
    serve.add_argument("--job-timeout", type=float, default=600.0,
                       help="default per-job wall-clock budget (s)")
    _add_cache(serve)
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a job to a running server",
        description="TARGET is an assembly file, a suite benchmark "
                    "name, or imagick-orig/imagick-opt.")
    submit.add_argument("target", nargs="?",
                        help="assembly file, benchmark name, or "
                             "imagick-orig/imagick-opt")
    submit.add_argument("--server", required=True,
                        metavar="HOST:PORT")
    submit.add_argument("--scale", type=float, default=0.5,
                        help="benchmark scale (named benchmarks)")
    submit.add_argument("--map-all", action="store_true",
                        help="premap the whole data address space "
                             "(assembly files)")
    submit.add_argument("--max-cycles", type=int, default=None)
    submit.add_argument("--job-timeout", type=float, default=None,
                        help="server-side wall-clock budget for this "
                             "job (seconds)")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="client-side wait budget (seconds)")
    submit.add_argument("--stream", action="store_true",
                        help="print NDJSON progress events to stderr "
                             "while waiting")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and exit immediately")
    submit.add_argument("--json", action="store_true",
                        help="print the raw JSON report")
    submit.add_argument("--stats", action="store_true",
                        help="print the server's /stats and exit")
    submit.add_argument("--cancel", metavar="JOB",
                        help="cancel a job instead of submitting")
    _add_common(submit)
    submit.set_defaults(func=cmd_submit)

    record = sub.add_parser("record", help="record a commit-stage trace")
    record.add_argument("file")
    record.add_argument("-o", "--output", default="trace.tiptrace")
    record.add_argument("--map-all", action="store_true")
    record.add_argument("--format", default="v3",
                        choices=["v1", "v2", "v3"],
                        help="trace format (v3 is columnar and replays "
                             "zero-copy via mmap; default)")
    record.add_argument("--chunk-cycles", type=int,
                        default=DEFAULT_CHUNK_CYCLES,
                        help="records per v2/v3 chunk")
    record.add_argument("--compress", action="store_true",
                        help="zlib-compress v2/v3 chunk payloads "
                             "(disables zero-copy v3 replay)")
    _add_sanitize(record)
    _add_sim(record)
    record.set_defaults(func=cmd_record)

    replay = sub.add_parser("replay", help="re-profile a recorded trace")
    replay.add_argument("trace")
    replay.add_argument("program")
    replay.add_argument("--policy", default="TIP",
                        choices=["Software", "Dispatch", "LCI", "NCI",
                                 "NCI+ILP", "TIP-ILP", "TIP"])
    replay.add_argument("--granularity", default="instruction",
                        choices=[g.value for g in Granularity])
    replay.add_argument("--jobs", type=int, default=1,
                        help="shard the replay over N worker processes "
                             "(v2/v3 traces; bit-identical to serial)")
    replay.add_argument("--engine", default="block",
                        choices=["cycle", "block"],
                        help="trace consumption engine: columnar "
                             "blocks (default; falls back to cycle "
                             "for v1 traces) or per-record cycles")
    _add_common(replay)
    _add_sanitize(replay)
    replay.set_defaults(func=cmd_replay)

    convert = sub.add_parser(
        "convert-trace",
        help="re-encode a trace in another format version "
             "(v1/v2 -> v3 upgrades, v3 -> v2 downgrades, ...)")
    convert.add_argument("trace")
    convert.add_argument("-o", "--output", required=True)
    convert.add_argument("--to", default="v3",
                         choices=["v1", "v2", "v3"],
                         help="target format version (default v3)")
    convert.add_argument("--chunk-cycles", type=int,
                         default=DEFAULT_CHUNK_CYCLES)
    convert.add_argument("--compress", action="store_true")
    convert.set_defaults(func=cmd_convert_trace)

    bench = sub.add_parser(
        "bench", help="time the simulate/record/replay/suite pipeline")
    bench.add_argument("benchmarks", nargs="*")
    bench.add_argument("-o", "--output", default="BENCH_pipeline.json")
    bench.add_argument("--scale", type=float, default=0.2)
    bench.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: CPU count)")
    bench.add_argument("--chunk-cycles", type=int,
                       default=DEFAULT_CHUNK_CYCLES)
    bench.add_argument("--compress", action="store_true")
    bench.add_argument("--trace",
                       help="recorded v2 trace: benchmark the "
                            "cycle-vs-block replay engines on it "
                            "instead of the full pipeline")
    bench.add_argument("--program",
                       help="assembly source the trace was recorded "
                            "from (required with --trace)")
    bench.add_argument("--quick", action="store_true",
                       help="fewer timing repetitions (CI smoke)")
    bench.add_argument("--seed", type=int, default=0,
                       help="sampling seed for --trace runs")
    bench.add_argument("--hotpath-output", default="BENCH_hotpath.json",
                       help="output file for --trace runs")
    bench.add_argument("--sim", action="store_true",
                       help="benchmark step vs fast-forward vs "
                            "cache-hit simulation instead of the "
                            "full pipeline")
    bench.add_argument("--sim-output", default="BENCH_sim.json",
                       help="output file for --sim runs")
    _add_common(bench)
    bench.set_defaults(func=cmd_bench)

    cache = sub.add_parser(
        "cache", help="manage the simulation result cache")
    cache.add_argument("action", choices=["stats", "clear", "verify"])
    cache.add_argument("--cache-dir", default=None,
                       help="cache root (default ~/.cache/repro or "
                            "$REPRO_CACHE_DIR)")
    cache.add_argument("--remove", action="store_true",
                       help="evict entries that fail verification")
    cache.set_defaults(func=cmd_cache)

    lint = sub.add_parser(
        "lint", help="statically lint programs",
        description="Lint assembly files, directories of .s files, "
                    "suite benchmark names, or imagick-orig/imagick-opt. "
                    "With --observers, targets are Python sources checked "
                    "against the observer/profiler contracts (C001-C005). "
                    "Exit status: 0 clean, 1 diagnostics found, 2 "
                    "usage/internal error.")
    lint.add_argument("targets", nargs="*")
    lint.add_argument("--format", choices=("text", "json"), default=None,
                      help="output format (default text)")
    lint.add_argument("--json", action="store_true",
                      help="shorthand for --format json")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule registry (id, severity, "
                           "tier, summary) and exit")
    lint.add_argument("--cost", action="store_true",
                      help="print the abstract interpreter's static "
                           "cycle-cost expectation instead of "
                           "diagnostics")
    lint.add_argument("--top", type=int, default=None,
                      help="with --cost, show only the N most "
                           "expensive instructions")
    lint.add_argument("--dataflow", dest="dataflow",
                      action="store_true", default=True,
                      help="enable the dataflow rule family "
                           "L009-L013 (default)")
    lint.add_argument("--no-dataflow", dest="dataflow",
                      action="store_false",
                      help="disable the dataflow rule family")
    lint.add_argument("--observers", action="store_true",
                      help="check observer/profiler contracts in "
                           "Python sources")
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 on any diagnostic, not only errors")
    lint.add_argument("--no-ignores", action="store_true",
                      help="report diagnostics even at addresses "
                           "carrying a '# lint: ignore[...]' pragma")
    lint.set_defaults(func=cmd_lint)

    annotate = sub.add_parser(
        "annotate", help="diff static cost model against a TIP profile",
        description="Simulate TARGET once with a sampling profiler, "
                    "then render the abstract interpreter's static "
                    "cycle expectation next to the measured "
                    "attribution per instruction.  Instructions whose "
                    "dynamic share exceeds "
                    "max(FACTOR * static, static + MARGIN) are "
                    "flagged divergent: they suffer a dynamic "
                    "pathology (flushes, cache misses, serialization) "
                    "the static model cannot see. Exit status: 0 "
                    "report produced, 1 divergence found under "
                    "--strict, 2 usage/internal error.")
    annotate.add_argument("target",
                          help="an .s file, a suite benchmark name, "
                               "or imagick-orig/imagick-opt")
    annotate.add_argument("--policy", default="TIP",
                          choices=["Software", "Dispatch", "LCI", "NCI",
                                   "NCI+ILP", "TIP-ILP", "TIP"])
    annotate.add_argument("--factor", type=float, default=2.0,
                          help="multiplicative divergence threshold "
                               "(default 2.0)")
    annotate.add_argument("--margin", type=float, default=0.02,
                          help="additive divergence threshold in "
                               "absolute share (default 0.02)")
    annotate.add_argument("--top", type=int, default=20,
                          help="show the N hottest instructions "
                               "(default 20)")
    annotate.add_argument("--scale", type=float, default=0.1,
                          help="suite benchmark scale factor "
                               "(default 0.1)")
    annotate.add_argument("--json", action="store_true",
                          help="print the JSON report to stdout")
    annotate.add_argument("-o", "--output", default=None,
                          help="write the JSON report to this file")
    annotate.add_argument("--strict", action="store_true",
                          help="exit 1 when any instruction diverges")
    _add_common(annotate)
    _add_sim(annotate)
    _add_cache(annotate)
    annotate.set_defaults(func=cmd_annotate)

    optimize = sub.add_parser(
        "optimize", help="apply dataflow-proven rewrites",
        description="Optimize an assembly file, a suite benchmark or "
                    "imagick-orig: lint, prove each structured fix "
                    "hint from dataflow facts, rewrite, then verify "
                    "the result differentially on the reference "
                    "interpreter and measure the speedup on the "
                    "out-of-order core. Exit status: 0 verified, 1 a "
                    "check failed, 2 usage/internal error.")
    optimize.add_argument("target",
                          help="an .s file, a suite benchmark name, "
                               "or imagick-orig")
    optimize.add_argument("-o", "--output", default=None,
                          help="write the optimized program as "
                               "assembly to this file")
    optimize.add_argument("--report", default=None,
                          help="write the full JSON report (rewrites, "
                               "certificates, differential, speedup) "
                               "to this file")
    optimize.add_argument("--json", action="store_true",
                          help="print the JSON report to stdout")
    optimize.add_argument("--trials", type=int, default=4,
                          help="differential trials incl. the "
                               "as-built image (default 4)")
    optimize.add_argument("--min-speedup", type=float, default=None,
                          help="fail (exit 1) unless the measured "
                               "speedup reaches this factor")
    optimize.add_argument("--no-measure", action="store_true",
                          help="skip the core simulation; only "
                               "rewrite and run the differential")
    optimize.add_argument("--no-ignores", action="store_true",
                          help="optimize findings even at addresses "
                               "carrying a '# lint: ignore[...]' "
                               "pragma")
    optimize.add_argument("--max-passes", type=int, default=8,
                          help="rewrite-pass budget (default 8)")
    optimize.add_argument("--scale", type=float, default=0.1,
                          help="suite benchmark scale factor "
                               "(default 0.1)")
    _add_sim(optimize)
    _add_cache(optimize)
    optimize.set_defaults(func=cmd_optimize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TraceInvariantError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 1
    except MaxCyclesExceeded as exc:
        print(f"simulation budget exhausted: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
