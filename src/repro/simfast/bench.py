"""``repro bench --sim``: simulation fast-path and cache timing.

Runs a stall-heavy subset of the suite through all three simulation
paths -- single-stepping, event-driven fast-forward and a warm
content-addressed cache hit -- with the full default profiler line-up
attached, and writes the comparison to ``BENCH_sim.json``.  Every
path's Oracle report, per-profiler sample checksums and core
statistics are compared first, so the benchmark doubles as a
differential test: the fast path and the cache are only wins if they
are *bit-identical* and faster, and CI fails the run when any checksum
diverges.

Timings are best-of-N wall clock on the current machine (N=2 with
``quick=True`` for CI smoke runs, N=3 otherwise; each measurement is a
complete simulation, so N stays small).
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from ..analysis.profiles import profile_checksum
from ..harness.experiment import default_profilers
from ..harness.runner import DEFAULT_PERIOD, run_workload
from ..workloads.suite import build_suite
from .cache import SimCache

#: Stall-heavy suite members where the fast-forward pays off most,
#: plus compute-bound members (exchange2, and lbm's steady kernel)
#: where the steady-state loop memoizer carries the speedup instead.
SIM_BENCHMARKS = ("mcf", "canneal", "omnetpp", "lbm", "exchange2")

DEFAULT_REPEATS = 3
QUICK_REPEATS = 2
DEFAULT_SCALE = 0.3
QUICK_SCALE = 0.15


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _result_checksum(result) -> str:
    """Hex digest covering everything a run produced.

    Oracle profile/categorized/watched maps, every profiler's raw
    sample stream and the core statistics -- all via ``repr``, which
    round-trips floats, so two runs hash equal iff bit-identical.
    """
    digest = hashlib.sha256()
    report = result.oracle
    digest.update(repr(sorted(report.profile.items())).encode())
    digest.update(repr(sorted(
        ((addr, cat.value), weight)
        for (addr, cat), weight in report.categorized.items())).encode())
    digest.update(repr(sorted(
        (kind.value, weight)
        for kind, weight in report.flush_breakdown.items())).encode())
    digest.update(repr(sorted(
        (cycle, (tuple(attr), cat.value))
        for cycle, (attr, cat) in report.watched.items())).encode())
    digest.update(repr(report.total_cycles).encode())
    for name in sorted(result.profilers):
        profiler = result.profilers[name]
        digest.update(name.encode())
        digest.update(profile_checksum(profiler.samples).encode())
    if result.stats is not None:
        # Driver fields count how the run was *driven*, not what it
        # produced -- they legitimately differ between step and fast.
        from ..cpu.core import CoreStats
        digest.update(repr(sorted(
            (k, v) for k, v in result.stats.to_dict().items()
            if k not in CoreStats.DRIVER_FIELDS)).encode())
    return digest.hexdigest()


def run_sim_bench(benchmarks: Sequence[str] = SIM_BENCHMARKS,
                  output: Optional[str] = "BENCH_sim.json",
                  period: int = DEFAULT_PERIOD,
                  scale: Optional[float] = None,
                  quick: bool = False,
                  repeats: Optional[int] = None,
                  max_cycles: int = 10_000_000,
                  verbose: bool = False) -> Dict:
    """Benchmark step vs fast vs cache-hit simulation on *benchmarks*.

    Returns the result dict and, unless *output* is ``None``, writes it
    there as JSON.  All timed runs use the block replay engine and the
    full default profiler line-up, so the measured ratios are what
    ``repro profile``/``repro suite`` users actually see.
    """
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS
    if scale is None:
        scale = QUICK_SCALE if quick else DEFAULT_SCALE

    from ..fastpath.bench import _bench_meta
    result: Dict = {
        "period": period,
        "scale": scale,
        "repeats": repeats,
        "quick": quick,
        "meta": _bench_meta(repeats),
        "rows": {},
    }
    checksums_equal = True

    cache_root = tempfile.mkdtemp(prefix="repro-simbench-")
    try:
        for workload in build_suite(list(benchmarks), scale=scale):
            if verbose:
                print(f"[bench] sim {workload.name} ...", flush=True)
            profilers = default_profilers(period)
            cache = SimCache(cache_root)

            def run(sim: str, use_cache: bool = False,
                    workload=workload, profilers=profilers, cache=cache):
                return run_workload(
                    workload, profilers, max_cycles, engine="block",
                    sim=sim, cache=cache if use_cache else None)

            # Correctness first: one untimed run per path, checksums
            # compared before any timing is trusted.  The cold cached
            # run fills the entry the warm run then hits.
            r_step = run("step")
            r_fast = run("fast")
            r_cold = run("fast", use_cache=True)
            r_warm = run("fast", use_cache=True)
            sums = [_result_checksum(r) for r in
                    (r_step, r_fast, r_cold, r_warm)]
            equal = (len(set(sums)) == 1 and not r_cold.cached
                     and r_warm.cached)
            checksums_equal &= equal

            step_s = _best_of(lambda: run("step"), repeats)
            fast_s = _best_of(lambda: run("fast"), repeats)
            warm_s = _best_of(lambda: run("fast", use_cache=True),
                              repeats)

            stats = r_fast.stats
            result["rows"][workload.name] = {
                "cycles": stats.cycles,
                "fast_forwarded": stats.fast_forwarded,
                "steady_state_iterations": stats.steady_state_iterations,
                "steady_state_cycles": stats.steady_state_cycles,
                "step_s": step_s,
                "fast_s": fast_s,
                "warm_s": warm_s,
                "fast_speedup": step_s / fast_s,
                "warm_speedup": step_s / warm_s,
                "checksums_equal": equal,
            }
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    result["checksums_equal"] = checksums_equal

    if output is not None:
        with open(output, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if verbose:
            print(f"[bench] wrote {output}", flush=True)
    return result


def render_sim_bench(result: Dict) -> str:
    """Human-readable one-screen summary of a sim bench result."""
    lines: List[str] = []
    lines.append(f"step vs fast vs cache-hit simulation, "
                 f"scale {result['scale']}, best of {result['repeats']}")
    for name, entry in result["rows"].items():
        flag = "" if entry["checksums_equal"] else "  MISMATCH"
        memo_cycles = entry.get("steady_state_cycles", 0)
        # fast_forwarded counts both skip mechanisms; split them out.
        stall_cycles = entry["fast_forwarded"] - memo_cycles
        ff_pct = (100.0 * stall_cycles / entry["cycles"]
                  if entry["cycles"] else 0.0)
        ss_pct = (100.0 * memo_cycles / entry["cycles"]
                  if entry["cycles"] else 0.0)
        lines.append(
            f"{name:>13}: step {entry['step_s'] * 1e3:8.1f}ms  "
            f"fast {entry['fast_s'] * 1e3:8.1f}ms "
            f"({ff_pct:4.1f}% ff, {ss_pct:4.1f}% memo)  "
            f"warm {entry['warm_s'] * 1e3:8.1f}ms  "
            f"{entry['fast_speedup']:.2f}x/{entry['warm_speedup']:.2f}x"
            f"{flag}")
    lines.append("path checksums: "
                 + ("OK (fast and cache identical to step)"
                    if result["checksums_equal"] else "MISMATCH"))
    return "\n".join(lines)
