"""Simulation fast path: stall fast-forwarding + result caching.

Three layers make re-running experiments cheap (see ``docs/simfast.md``):

* the **event-driven stall fast-forward** lives inside
  :class:`repro.cpu.core.Core` (``sim="fast"``) and batches provably
  quiescent cycles through
  :meth:`~repro.cpu.trace.TraceObserver.on_stall_run`;
* **micro-op recycling** (:class:`repro.cpu.MicroOpPool`) removes the
  per-fetch allocation cost;
* the **content-addressed simulation cache** (:class:`SimCache`) stores
  the v2 trace of a completed run keyed by everything that determines
  it, so identical re-runs replay through the columnar block engine
  instead of simulating.

All three produce results bit-identical to single-stepping -- the same
traces and the same profiler reports, floating point included.
"""

from .bench import render_sim_bench, run_sim_bench
from .cache import (DEFAULT_CACHE_BYTES, CacheCorruptionWarning, CacheHit,
                    SimCache, default_cache_root, resolve_cache,
                    simulation_key)

__all__ = [
    "CacheCorruptionWarning", "CacheHit", "DEFAULT_CACHE_BYTES",
    "SimCache", "default_cache_root", "render_sim_bench",
    "resolve_cache", "run_sim_bench", "simulation_key",
]
