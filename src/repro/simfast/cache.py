"""Content-addressed simulation cache.

A completed simulation is fully determined by the program (including
its pre-mapped data ranges), the core configuration, and the core-side
sampling schedule -- so its commit trace and final statistics can be
reused by any later run with the same inputs.  :class:`SimCache` stores
exactly that under ``~/.cache/repro`` (overridable via ``--cache-dir``
or ``$REPRO_CACHE_DIR``):

* the **key** is a SHA-256 over (program digest, config digest,
  sampling-schedule parameters, trace-format version, repro version) --
  any change to the simulator's inputs or to the code that could alter
  its output yields a fresh key, which is the whole invalidation story
  (bumping :data:`TRACE_FORMAT_VERSION` invalidates every v2-era
  entry, so mixed-version caches never hand back a stale format);
* each entry is a ``<key>.trace`` (columnar v3, written atomically by
  the path-mode :class:`~repro.cpu.tracefile.TraceWriterV3`, replayed
  zero-copy via mmap) plus a ``<key>.json`` sidecar holding the
  trace's SHA-256 checksum and the run's
  :class:`~repro.cpu.core.CoreStats`;
* every hit re-verifies the checksum (corrupt entries are evicted and
  treated as misses) and touches the trace's mtime, which drives the
  LRU size cap (:data:`DEFAULT_CACHE_BYTES`).

Runs that hit the ``max_cycles`` budget raise
:class:`~repro.cpu.core.MaxCyclesExceeded` before the writer finishes,
so truncated runs are never committed; a cached entry only hits when
its recorded cycle count fits the caller's budget.
"""

from __future__ import annotations

import hashlib
import json
import os
from array import array
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import __version__
from ..cpu.config import CoreConfig
from ..cpu.core import CoreStats
from ..cpu.tracefile import TraceWriterV3
from ..isa.program import Program

#: Wire-format version of the cached traces (``TIPTRC03``).
TRACE_FORMAT_VERSION = 3

#: Default LRU size cap: 1 GiB of traces + sidecars.
DEFAULT_CACHE_BYTES = 1 << 30

#: Environment override for the cache root.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


class CacheCorruptionWarning(UserWarning):
    """A cache entry passed its checksum but could not be replayed.

    The checksum guards byte integrity, not decodability: an entry
    written by a different producer, tampered with consistently
    (trace and sidecar together), or swapped underneath us between
    checksum verification and replay can still fail to decode.  The
    harness evicts such entries, emits this warning (printed to stderr
    by the default warning filters) and falls back to a fresh
    simulation instead of surfacing a bare traceback.
    """


def default_cache_root() -> str:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def program_digest(program: Program,
                   premapped: Optional[Sequence[Tuple[int, int]]] = None
                   ) -> str:
    """Digest of everything about *program* the simulator can observe."""
    h = hashlib.sha256()
    h.update(repr([(inst.op.name, inst.rd, tuple(inst.sources),
                    inst.imm, inst.addr)
                   for inst in program.instructions]).encode())
    h.update(repr(("entry", program.entry)).encode())
    data = program.data
    addrs = sorted(data)
    try:
        # Large data images hash as packed int64 columns; anything that
        # does not fit (or is not an int) falls back to repr.
        h.update(b"data")
        h.update(array("q", addrs).tobytes())
        h.update(array("q", [data[addr] for addr in addrs]).tobytes())
    except (OverflowError, TypeError):
        h.update(repr(("data", [(addr, data[addr])
                                for addr in addrs])).encode())
    h.update(repr(("premapped",
                   [tuple(span) for span in premapped or ()])).encode())
    return h.hexdigest()


def config_digest(config: CoreConfig) -> str:
    """Digest of the full core + memory-hierarchy configuration."""
    payload = json.dumps(asdict(config), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()


def simulation_key(program: Program, config: CoreConfig,
                   premapped: Optional[Sequence[Tuple[int, int]]] = None,
                   schedule: Optional[Tuple] = None) -> str:
    """Content key of a run (module-level form of ``SimCache.key_for``).

    *schedule* carries the core-side sampling-interrupt parameters
    (period, mode, seed) when one is attached, ``None`` otherwise;
    replay-side profiler schedules never enter the key because they do
    not influence the trace.  The job server uses this to coalesce
    duplicate submissions without instantiating a cache.
    """
    h = hashlib.sha256()
    h.update(program_digest(program, premapped).encode())
    h.update(config_digest(config).encode())
    h.update(repr(("schedule", schedule)).encode())
    h.update(repr(("format", TRACE_FORMAT_VERSION)).encode())
    h.update(repr(("repro", __version__)).encode())
    return h.hexdigest()


@dataclass
class CacheHit:
    """A verified cache entry ready for block-engine replay."""

    key: str
    trace_path: str
    stats: CoreStats


class SimCache:
    """Filesystem-backed, checksum-verified simulation result cache."""

    def __init__(self, root: Optional[str] = None,
                 max_bytes: int = DEFAULT_CACHE_BYTES):
        self.root = os.path.abspath(root or default_cache_root())
        self.max_bytes = max_bytes
        os.makedirs(self.root, exist_ok=True)

    # -- keys ------------------------------------------------------------------------

    def key_for(self, program: Program, config: CoreConfig,
                premapped: Optional[Sequence[Tuple[int, int]]] = None,
                schedule: Optional[Tuple] = None) -> str:
        """Content key of a run.

        *schedule* carries the core-side sampling-interrupt parameters
        (period, mode, seed) when one is attached, ``None`` otherwise;
        replay-side profiler schedules never enter the key because they
        do not influence the trace.
        """
        return simulation_key(program, config, premapped, schedule)

    def _trace_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.trace")

    def _meta_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # -- hits ------------------------------------------------------------------------

    def lookup(self, key: str,
               max_cycles: Optional[int] = None) -> Optional[CacheHit]:
        """Return a verified entry, or ``None`` (miss).

        Misses include: no entry, an entry whose run needed more than
        *max_cycles* cycles (it could not have been produced under the
        caller's budget), and entries whose trace fails its recorded
        checksum -- those are evicted on the spot.
        """
        trace_path = self._trace_path(key)
        try:
            with open(self._meta_path(key), "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(meta, dict) or not os.path.exists(trace_path):
            return None
        if max_cycles is not None and meta.get("cycles", 0) > max_cycles:
            return None
        if _sha256_file(trace_path) != meta.get("sha256"):
            self.evict(key)
            return None
        os.utime(trace_path)  # LRU touch
        return CacheHit(key, trace_path,
                        CoreStats.from_dict(meta.get("stats", {})))

    # -- fills -----------------------------------------------------------------------

    def open_writer(self, key: str, banks: int,
                    compress: bool = False) -> TraceWriterV3:
        """A path-mode (atomic) trace writer targeting this entry.

        Attach it to the machine for the run; on an aborted or failed
        run call :meth:`TraceWriterV3.abort` and nothing is cached.
        The entry only becomes visible once :meth:`commit` writes the
        checksummed sidecar.
        """
        return TraceWriterV3(self._trace_path(key), banks=banks,
                             compress=compress)

    def commit(self, key: str, stats: CoreStats,
               program_name: str = "") -> None:
        """Publish a filled entry: checksum the trace, write the meta."""
        meta = {
            "format": TRACE_FORMAT_VERSION,
            "version": __version__,
            "program": program_name,
            "cycles": stats.cycles,
            "stats": stats.to_dict(),
            "sha256": _sha256_file(self._trace_path(key)),
        }
        meta_path = self._meta_path(key)
        tmp = f"{meta_path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, meta_path)
        self._evict_lru()

    # -- maintenance -----------------------------------------------------------------

    def keys(self) -> List[str]:
        return sorted(name[:-5] for name in os.listdir(self.root)
                      if name.endswith(".json"))

    def evict(self, key: str) -> None:
        for path in (self._meta_path(key), self._trace_path(key)):
            try:
                os.unlink(path)
            except OSError:
                pass

    def stats(self) -> Dict[str, Union[str, int]]:
        entries = 0
        total = 0
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if name.endswith(".json"):
                entries += 1
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return {"root": self.root, "entries": entries, "bytes": total,
                "max_bytes": self.max_bytes}

    def clear(self) -> int:
        """Remove every entry (and stray temporaries); returns count."""
        removed = 0
        for name in os.listdir(self.root):
            if name.endswith((".json", ".trace", ".tmp")):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def verify(self, remove: bool = False) -> Dict[str, bool]:
        """Checksum every entry; with *remove*, evict the bad ones.

        Orphan traces (no sidecar -- e.g. a crash between the trace
        rename and the meta write) count as bad entries.
        """
        results: Dict[str, bool] = {}
        for key in self.keys():
            trace_path = self._trace_path(key)
            try:
                with open(self._meta_path(key), "r",
                          encoding="utf-8") as fh:
                    meta = json.load(fh)
                ok = (isinstance(meta, dict)
                      and _sha256_file(trace_path) == meta.get("sha256"))
            except (OSError, ValueError):
                ok = False
            results[key] = ok
            if remove and not ok:
                self.evict(key)
        known = set(results)
        for name in os.listdir(self.root):
            if name.endswith(".trace") and name[:-6] not in known:
                results[name[:-6]] = False
                if remove:
                    self.evict(name[:-6])
        return results

    def _evict_lru(self) -> None:
        entries: List[Tuple[float, int, str]] = []
        total = 0
        for key in self.keys():
            size = 0
            mtime = 0.0
            for path in (self._trace_path(key), self._meta_path(key)):
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                size += stat.st_size
                mtime = max(mtime, stat.st_mtime)
            entries.append((mtime, size, key))
            total += size
        entries.sort()
        for mtime, size, key in entries:
            if total <= self.max_bytes:
                break
            self.evict(key)
            total -= size

    def __repr__(self) -> str:
        return f"<SimCache {self.root}>"


def resolve_cache(cache: Union[None, bool, str, "os.PathLike[str]",
                               SimCache]) -> Optional[SimCache]:
    """Normalize the ``cache=`` argument accepted across the harness.

    ``None``/``False`` disable caching; ``True`` uses the default root;
    a path selects that root; a :class:`SimCache` passes through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SimCache()
    if isinstance(cache, SimCache):
        return cache
    return SimCache(os.fspath(cache))


def _sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()
