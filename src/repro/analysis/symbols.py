"""Symbolization: mapping instruction addresses to profile symbols.

Profiles can be built at three granularities (Section 4): individual
instructions, basic blocks, and functions.  Basic blocks are recovered
from the static CFG of the program binary: a new block starts at every
function entry, at every static control-flow target, and after every
control-flow instruction.
"""

from __future__ import annotations

import bisect
import enum
from typing import Dict, Hashable, List, Optional

from ..isa.instruction import INSTRUCTION_BYTES
from ..isa.opcodes import Kind
from ..isa.program import Program

#: Symbol for addresses outside the program text (e.g. a software sample
#: whose skidded PC ran off the text segment).
OFF_TEXT = "<off-text>"
#: Function symbol for text addresses not covered by a function.
UNKNOWN_FUNCTION = "<unknown>"


class Granularity(enum.Enum):
    INSTRUCTION = "instruction"
    BASIC_BLOCK = "basic-block"
    FUNCTION = "function"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Symbolizer:
    """Maps addresses to symbols at each granularity for one program."""

    def __init__(self, program: Program):
        self.program = program
        self._leaders = self._find_leaders()
        self._func_lo = [f.lo for f in program.functions]
        self._func = program.functions

    def _find_leaders(self) -> List[int]:
        program = self.program
        leaders = {program.text_lo}
        for func in program.functions:
            leaders.add(func.lo)
        for inst in program.instructions:
            if inst.kind in (Kind.BRANCH, Kind.JUMP, Kind.CALL):
                if inst.imm in program:
                    leaders.add(inst.imm)
            if inst.is_control or inst.is_halt or \
                    inst.flushes_on_commit or inst.is_serializing:
                follower = inst.addr + INSTRUCTION_BYTES
                if follower in program:
                    leaders.add(follower)
        return sorted(leaders)

    # -- mapping -------------------------------------------------------------

    def instruction(self, addr: int) -> Hashable:
        return addr if addr in self.program else OFF_TEXT

    def basic_block(self, addr: int) -> Hashable:
        if addr not in self.program:
            return OFF_TEXT
        index = bisect.bisect_right(self._leaders, addr) - 1
        return self._leaders[max(index, 0)]

    def function(self, addr: int) -> Hashable:
        if addr not in self.program:
            return OFF_TEXT
        index = bisect.bisect_right(self._func_lo, addr) - 1
        if index >= 0 and self._func[index].contains(addr):
            return self._func[index].name
        return UNKNOWN_FUNCTION

    def symbol(self, addr: int, granularity: Granularity) -> Hashable:
        if granularity is Granularity.INSTRUCTION:
            return self.instruction(addr)
        if granularity is Granularity.BASIC_BLOCK:
            return self.basic_block(addr)
        return self.function(addr)

    def aggregate(self, weights, granularity: Granularity) -> Dict:
        """Collapse an ``[(addr, weight)]`` attribution onto symbols."""
        out: Dict = {}
        for addr, weight in weights:
            sym = self.symbol(addr, granularity)
            out[sym] = out.get(sym, 0.0) + weight
        return out

    @property
    def num_basic_blocks(self) -> int:
        return len(self._leaders)
