"""Static-vs-dynamic instruction annotation (``repro annotate``).

The abstract interpreter's cost model predicts where a program *should*
spend its cycles from the text alone: instruction latencies, provable
memory footprints and loop trip bounds.  A TIP profile measures where
the cycles actually went.  Annotating one against the other turns the
two attributions into a diagnosis: instructions whose dynamic share
far exceeds their static expectation are exactly the ones suffering a
microarchitectural pathology the static model cannot see -- pipeline
flush trains, cache-hostile strides, serialization.

That is the Section 6 workflow in miniature: on ``imagick-orig`` the
flush-heavy kernel lines light up as divergent, and after the
``imagick-opt`` rewrite the same report comes back clean.

An instruction is flagged *divergent* when

    dynamic > max(factor * static, static + margin)

with ``factor = 2.0`` and ``margin = 0.02`` by default: the dynamic
share must beat the static expectation both multiplicatively (to
ignore noise on cold instructions) and additively (to ignore tiny
absolute excesses on instructions near zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..isa.disasm import format_instruction
from ..isa.program import Program
from ..lint.absint.cost import CostReport, static_cost_report
from ..lint.cfg import build_cfg
from ..lint.context import LintContext

#: Default multiplicative slack before a line counts as divergent.
DEFAULT_FACTOR = 2.0
#: Default additive slack (absolute share) before a line counts.
DEFAULT_MARGIN = 0.02


@dataclass(frozen=True)
class AnnotatedLine:
    """One instruction's static expectation next to its measured share."""

    addr: int
    function: str
    text: str
    static_share: float
    dynamic_share: float
    divergent: bool

    @property
    def excess(self) -> float:
        """How far the measurement overshoots the expectation."""
        return self.dynamic_share - self.static_share

    def to_dict(self) -> dict:
        return {
            "addr": self.addr,
            "function": self.function,
            "text": self.text,
            "static_share": self.static_share,
            "dynamic_share": self.dynamic_share,
            "divergent": self.divergent,
        }


@dataclass
class AnnotateReport:
    """Side-by-side static/dynamic attribution for one program."""

    target: str
    policy: str
    factor: float = DEFAULT_FACTOR
    margin: float = DEFAULT_MARGIN
    lines: List[AnnotatedLine] = field(default_factory=list)

    @property
    def divergent(self) -> List[AnnotatedLine]:
        """The flagged lines, largest overshoot first."""
        flagged = [line for line in self.lines if line.divergent]
        return sorted(flagged, key=lambda l: (-l.excess, l.addr))

    def render(self, top: Optional[int] = None) -> str:
        rows = sorted(self.lines,
                      key=lambda l: (-l.dynamic_share, l.addr))
        if top is not None:
            rows = rows[:top]
        flagged = len(self.divergent)
        out = [f"{self.target}: static vs {self.policy} attribution, "
               f"{flagged} divergent instruction(s)",
               f"{'addr':>10}  {'static':>7}  {'dynamic':>7}  "
               f"{'':>2}  instruction"]
        for line in rows:
            mark = "!!" if line.divergent else ""
            out.append(f"{line.addr:#10x}  {line.static_share:6.1%}  "
                       f"{line.dynamic_share:6.1%}  {mark:>2}  "
                       f"{line.function}: {line.text}")
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "policy": self.policy,
            "factor": self.factor,
            "margin": self.margin,
            "divergent": [line.addr for line in self.divergent],
            "lines": [line.to_dict()
                      for line in sorted(self.lines,
                                         key=lambda l: l.addr)],
        }


def annotate_profile(program: Program,
                     profile: Dict[Hashable, float],
                     target: str = "program",
                     policy: str = "TIP",
                     regions: Tuple[Tuple[int, int], ...] = (),
                     static: Optional[CostReport] = None,
                     factor: float = DEFAULT_FACTOR,
                     margin: float = DEFAULT_MARGIN) -> AnnotateReport:
    """Annotate a measured instruction-level *profile* against the
    static cost model's expectation for *program*.

    *profile* maps instruction addresses to normalized time shares (the
    shape of :meth:`ExperimentResult.profile` at instruction
    granularity); non-address keys (off-text time) are ignored.  Pass
    *static* to reuse an already-built :class:`CostReport`.
    """
    if static is None:
        ctx = LintContext(program, build_cfg(program),
                          regions=tuple(regions))
        static = static_cost_report(ctx)
    static_shares = static.shares()
    functions = {line.addr: line.function for line in static.lines}
    texts = {line.addr: line.text for line in static.lines}

    dynamic: Dict[int, float] = {}
    for sym, share in profile.items():
        if isinstance(sym, int) and sym in program:
            dynamic[sym] = dynamic.get(sym, 0.0) + share

    report = AnnotateReport(target=target, policy=policy,
                            factor=factor, margin=margin)
    for addr in sorted(set(static_shares) | set(dynamic)):
        expected = static_shares.get(addr, 0.0)
        measured = dynamic.get(addr, 0.0)
        text = texts.get(addr)
        if text is None:
            inst = program.fetch(addr)
            text = format_instruction(inst) if inst else "?"
        function = functions.get(addr)
        if function is None:
            symbol = program.function_of(addr)
            function = symbol.name if symbol else "?"
        flagged = measured > max(factor * expected, expected + margin)
        report.lines.append(AnnotatedLine(
            addr=addr, function=function, text=text,
            static_share=expected, dynamic_share=measured,
            divergent=flagged))
    return report
