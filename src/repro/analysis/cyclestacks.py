"""Cycle stacks captured at commit (Figure 7 / Figure 13).

A cycle stack attributes every cycle of a run to one of the Section 3.1
categories (Execution, ALU/Load/Store stall, Front-end, Mispredict,
Misc. flush).  The stacks come straight out of the Oracle's categorised
attribution, and the paper's benchmark classification rule turns a stack
into a Compute / Flush / Stall class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.oracle import OracleReport
from ..core.samples import Category
from .symbols import Granularity, Symbolizer

#: Display order of stack components (execute at the bottom).
STACK_ORDER: Tuple[Category, ...] = (
    Category.EXECUTION, Category.ALU_STALL, Category.LOAD_STALL,
    Category.STORE_STALL, Category.FRONTEND, Category.MISPREDICT,
    Category.MISC_FLUSH,
)

#: Benchmark classes of Figure 7.
CLASS_COMPUTE = "Compute"
CLASS_FLUSH = "Flush"
CLASS_STALL = "Stall"


@dataclass
class CycleStack:
    """Per-category cycle totals for one run (or one function)."""

    totals: Dict[Category, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fraction(self, category: Category) -> float:
        total = self.total
        if not total:
            return 0.0
        return self.totals.get(category, 0.0) / total

    def normalized(self) -> Dict[Category, float]:
        return {category: self.fraction(category)
                for category in STACK_ORDER}

    @property
    def flush_fraction(self) -> float:
        return (self.fraction(Category.MISPREDICT)
                + self.fraction(Category.MISC_FLUSH))

    def classify(self) -> str:
        """The paper's classification rule (Section 4)."""
        if self.fraction(Category.EXECUTION) > 0.50:
            return CLASS_COMPUTE
        if self.flush_fraction > 0.03:
            return CLASS_FLUSH
        return CLASS_STALL


def cycle_stack(oracle: OracleReport) -> CycleStack:
    """Whole-run cycle stack from the Oracle's attribution."""
    return CycleStack(dict(oracle.category_totals))


def per_symbol_stacks(oracle: OracleReport, symbolizer: Symbolizer,
                      granularity: Granularity = Granularity.FUNCTION
                      ) -> Dict[Hashable, CycleStack]:
    """Cycle stacks per symbol (Figure 13 shows these per function)."""
    stacks: Dict[Hashable, CycleStack] = {}
    for (addr, category), cycles in oracle.categorized.items():
        sym = symbolizer.symbol(addr, granularity)
        stack = stacks.setdefault(sym, CycleStack())
        stack.totals[category] = stack.totals.get(category, 0.0) + cycles
    return stacks
