"""Text rendering of profiles, error tables and cycle stacks.

These produce the human-readable artefacts of the paper: the Figure 12
style side-by-side function/instruction profiles, Figure 7/13 style cycle
stacks, and the per-benchmark error tables behind Figures 8-10.
"""

from __future__ import annotations

from typing import (Callable, Dict, Hashable, Iterable, List, Mapping,
                    Optional, Sequence)

from ..isa.program import Program
from .cyclestacks import STACK_ORDER, CycleStack


def format_diag(severity: str, rule: str, message: str, *,
                addr: Optional[int] = None,
                function: Optional[str] = None,
                cycle: Optional[int] = None,
                hint: Optional[str] = None,
                path: Optional[str] = None,
                line: Optional[int] = None,
                col: Optional[int] = None) -> str:
    """The one shared diagnostic line format of the toolkit.

    Used by the linter's :class:`~repro.lint.diagnostics.Diagnostic`
    and the trace sanitizer's violation reports so every tool prints
    machine-grepable, uniformly shaped lines::

        severity[RULE] path:line:col cycle N @0xADDR (function): message
            hint: ...

    Location parts (*path*/*line*/*col* for source files, *cycle* for
    traces, *addr*/*function* for guest text) are optional and omitted
    when unknown.  *hint* adds an indented fix-suggestion line.
    """
    parts = [f"{severity}[{rule}]"]
    if path is not None:
        location = path
        if line is not None:
            location += f":{line}"
            if col is not None:
                location += f":{col}"
        parts.append(location)
    if cycle is not None:
        parts.append(f"cycle {cycle}")
    if addr is not None:
        parts.append(f"@{addr:#x}")
    if function:
        parts.append(f"({function})")
    text = f"{' '.join(parts)}: {message}"
    if hint:
        text += f"\n    hint: {hint}"
    return text


def _render_matrix(title: str, row_label: str, rows: Sequence[str],
                   columns: Sequence[str],
                   cell: Callable[[str, str], float],
                   footer: Optional[str] = None,
                   footer_cell: Optional[Callable[[str], float]] = None
                   ) -> str:
    """Shared rows x columns percentage table (profiles, error tables)."""
    if not rows:
        return f"== {title} ==\n(empty)"
    width = max([len(r) for r in rows]
                + [len(footer or ""), len(row_label), 10])
    lines = [f"== {title} ==",
             f"{row_label:<{width}} " + " ".join(f"{c:>9}" for c in columns)]
    for row in rows:
        body = " ".join(f"{cell(row, c):>8.2%}" for c in columns)
        lines.append(f"{row:<{width}} {body}")
    if footer is not None and footer_cell is not None:
        body = " ".join(f"{footer_cell(c):>8.2%}" for c in columns)
        lines.append(f"{footer:<{width}} {body}")
    return "\n".join(lines)


def _fmt_symbol(program: Optional[Program], sym: Hashable) -> str:
    if isinstance(sym, int):
        label = f"{sym:#x}"
        if program is not None:
            inst = program.fetch(sym)
            if inst is not None:
                return f"{label} {inst.op.value}"
        return label
    return str(sym)


def render_profile_table(profiles: Mapping[str, Dict[Hashable, float]],
                         program: Optional[Program] = None,
                         top: int = 15, title: str = "profile") -> str:
    """Side-by-side normalised profiles, ranked by the first column."""
    names = list(profiles)
    if not names:
        return f"== {title} ==\n(empty)"
    reference = profiles[names[0]]
    symbols = sorted(set().union(*[p.keys() for p in profiles.values()]),
                     key=lambda s: reference.get(s, 0.0), reverse=True)[:top]
    width = max([len(_fmt_symbol(program, s)) for s in symbols] + [8])
    lines = [f"== {title} ==",
             f"{'symbol':<{width}} " + " ".join(f"{n:>9}" for n in names)]
    for sym in symbols:
        row = " ".join(f"{profiles[n].get(sym, 0.0):>8.2%}" for n in names)
        lines.append(f"{_fmt_symbol(program, sym):<{width}} {row}")
    return "\n".join(lines)


def render_error_table(errors: Mapping[str, Mapping[str, float]],
                       title: str = "profile error") -> str:
    """Benchmarks x profilers error matrix, plus the arithmetic mean."""
    benchmarks = list(errors)
    if not benchmarks:
        return f"== {title} ==\n(empty)"
    profilers = list(next(iter(errors.values())))
    return _render_matrix(
        title, "benchmark", benchmarks, profilers,
        lambda bench, prof: errors[bench].get(prof, 0.0),
        footer="average",
        footer_cell=lambda prof: sum(errors[b].get(prof, 0.0)
                                     for b in benchmarks) / len(benchmarks))


def render_cycle_stack(stack: CycleStack, label: str = "run") -> str:
    """One normalised cycle stack as text."""
    lines = [f"== cycle stack: {label} (total {stack.total:.0f} cycles) =="]
    for category in STACK_ORDER:
        lines.append(f"  {category.value:<12} {stack.fraction(category):>7.2%}")
    lines.append(f"  class: {stack.classify()}")
    return "\n".join(lines)


def render_stacks_table(stacks: Mapping[str, CycleStack],
                        title: str = "cycle stacks") -> str:
    """Many normalised cycle stacks side by side (Figure 7 layout)."""
    names = list(stacks)
    if not names:
        return f"== {title} ==\n(empty)"
    width = max([len(n) for n in names] + [10])
    header = " ".join(f"{c.value[:9]:>9}" for c in STACK_ORDER)
    lines = [f"== {title} ==",
             f"{'benchmark':<{width}} {header} {'class':>8}"]
    for name in names:
        stack = stacks[name]
        row = " ".join(f"{stack.fraction(c):>8.2%}" for c in STACK_ORDER)
        lines.append(f"{name:<{width}} {row} {stack.classify():>8}")
    return "\n".join(lines)
