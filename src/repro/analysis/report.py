"""Text rendering of profiles, error tables and cycle stacks.

These produce the human-readable artefacts of the paper: the Figure 12
style side-by-side function/instruction profiles, Figure 7/13 style cycle
stacks, and the per-benchmark error tables behind Figures 8-10.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from ..isa.program import Program
from .cyclestacks import STACK_ORDER, CycleStack


def _fmt_symbol(program: Optional[Program], sym: Hashable) -> str:
    if isinstance(sym, int):
        label = f"{sym:#x}"
        if program is not None:
            inst = program.fetch(sym)
            if inst is not None:
                return f"{label} {inst.op.value}"
        return label
    return str(sym)


def render_profile_table(profiles: Mapping[str, Dict[Hashable, float]],
                         program: Optional[Program] = None,
                         top: int = 15, title: str = "profile") -> str:
    """Side-by-side normalised profiles, ranked by the first column."""
    names = list(profiles)
    if not names:
        return f"== {title} ==\n(empty)"
    reference = profiles[names[0]]
    symbols = sorted(set().union(*[p.keys() for p in profiles.values()]),
                     key=lambda s: reference.get(s, 0.0), reverse=True)[:top]
    width = max([len(_fmt_symbol(program, s)) for s in symbols] + [8])
    lines = [f"== {title} ==",
             f"{'symbol':<{width}} " + " ".join(f"{n:>9}" for n in names)]
    for sym in symbols:
        row = " ".join(f"{profiles[n].get(sym, 0.0):>8.2%}" for n in names)
        lines.append(f"{_fmt_symbol(program, sym):<{width}} {row}")
    return "\n".join(lines)


def render_error_table(errors: Mapping[str, Mapping[str, float]],
                       title: str = "profile error") -> str:
    """Benchmarks x profilers error matrix, plus the arithmetic mean."""
    benchmarks = list(errors)
    if not benchmarks:
        return f"== {title} ==\n(empty)"
    profilers = list(next(iter(errors.values())))
    width = max([len(b) for b in benchmarks] + [len("average"), 10])
    lines = [f"== {title} ==",
             f"{'benchmark':<{width}} "
             + " ".join(f"{p:>9}" for p in profilers)]
    for bench in benchmarks:
        row = " ".join(f"{errors[bench].get(p, 0.0):>8.2%}"
                       for p in profilers)
        lines.append(f"{bench:<{width}} {row}")
    averages = {p: sum(errors[b].get(p, 0.0) for b in benchmarks)
                / len(benchmarks) for p in profilers}
    lines.append(f"{'average':<{width}} "
                 + " ".join(f"{averages[p]:>8.2%}" for p in profilers))
    return "\n".join(lines)


def render_cycle_stack(stack: CycleStack, label: str = "run") -> str:
    """One normalised cycle stack as text."""
    lines = [f"== cycle stack: {label} (total {stack.total:.0f} cycles) =="]
    for category in STACK_ORDER:
        lines.append(f"  {category.value:<12} {stack.fraction(category):>7.2%}")
    lines.append(f"  class: {stack.classify()}")
    return "\n".join(lines)


def render_stacks_table(stacks: Mapping[str, CycleStack],
                        title: str = "cycle stacks") -> str:
    """Many normalised cycle stacks side by side (Figure 7 layout)."""
    names = list(stacks)
    if not names:
        return f"== {title} ==\n(empty)"
    width = max([len(n) for n in names] + [10])
    header = " ".join(f"{c.value[:9]:>9}" for c in STACK_ORDER)
    lines = [f"== {title} ==",
             f"{'benchmark':<{width}} {header} {'class':>8}"]
    for name in names:
        stack = stacks[name]
        row = " ".join(f"{stack.fraction(c):>8.2%}" for c in STACK_ORDER)
        lines.append(f"{name:<{width}} {row} {stack.classify():>8}")
    return "\n".join(lines)
