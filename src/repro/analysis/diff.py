"""Profile diffing: quantify an optimization's effect per symbol.

The Section 6 workflow ends with comparing the original and optimized
runs (Figure 13).  :func:`diff_profiles` makes that comparison a
first-class operation: given two *unnormalised* profiles (symbol ->
time) it reports, per symbol, the absolute and relative time change,
ranked by impact -- the table a developer reads after applying a fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional


@dataclass(frozen=True)
class SymbolDelta:
    """Time change of one symbol between two runs."""

    symbol: Hashable
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def speedup(self) -> float:
        """How much faster this symbol got (>1 = improvement)."""
        if self.after <= 0.0:
            return float("inf") if self.before > 0 else 1.0
        return self.before / self.after


@dataclass
class ProfileDiff:
    """Full comparison of two profiles."""

    deltas: List[SymbolDelta]
    total_before: float
    total_after: float

    @property
    def overall_speedup(self) -> float:
        if self.total_after <= 0.0:
            return float("inf") if self.total_before > 0 else 1.0
        return self.total_before / self.total_after

    def improvements(self) -> List[SymbolDelta]:
        """Symbols that got faster, biggest absolute win first."""
        wins = [d for d in self.deltas if d.delta < 0]
        return sorted(wins, key=lambda d: d.delta)

    def regressions(self) -> List[SymbolDelta]:
        """Symbols that got slower, biggest absolute loss first."""
        losses = [d for d in self.deltas if d.delta > 0]
        return sorted(losses, key=lambda d: d.delta, reverse=True)


def diff_profiles(before: Dict[Hashable, float],
                  after: Dict[Hashable, float]) -> ProfileDiff:
    """Compare two unnormalised symbol -> time profiles."""
    symbols = set(before) | set(after)
    deltas = [SymbolDelta(sym, before.get(sym, 0.0), after.get(sym, 0.0))
              for sym in symbols]
    deltas.sort(key=lambda d: abs(d.delta), reverse=True)
    return ProfileDiff(deltas, sum(before.values()), sum(after.values()))


def render_diff(diff: ProfileDiff, top: int = 10,
                title: str = "profile diff") -> str:
    """Human-readable diff table."""
    lines = [f"== {title} ==",
             f"overall: {diff.total_before:.0f} -> {diff.total_after:.0f} "
             f"cycles ({diff.overall_speedup:.2f}x)"]
    width = max([len(str(d.symbol)) for d in diff.deltas[:top]] + [8])
    lines.append(f"{'symbol':<{width}} {'before':>10} {'after':>10} "
                 f"{'delta':>10} {'speedup':>8}")
    for delta in diff.deltas[:top]:
        speedup = (f"{delta.speedup:.2f}x"
                   if delta.speedup != float("inf") else "inf")
        lines.append(f"{str(delta.symbol):<{width}} {delta.before:>10.0f} "
                     f"{delta.after:>10.0f} {delta.delta:>+10.0f} "
                     f"{speedup:>8}")
    return "\n".join(lines)
