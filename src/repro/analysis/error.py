"""The profile error metric (Section 4, "Quantifying profile error").

Each sample stands for the whole interval since the previous sample.  The
practical profiler attributes the interval to the symbol(s) it sampled;
Oracle attributes every cycle of the interval to golden symbols.  The
correctly-attributed cycles of a sample are the overlap between the two,
and the relative error over a run is

    e = (c_total - c_correct) / c_total .

This contains both error sources the paper describes: *systematic* error
(the profiler picked the wrong symbol for the sampled cycle) and
*unsystematic* error (the sampled cycle does not represent the whole
interval), the latter shrinking as the sampling frequency rises --
which is exactly the Figure 11a behaviour.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.oracle import OracleReport, ScheduleKey, schedule_key
from ..core.profiler import SamplingProfiler
from ..core.samples import Sample
from .symbols import Granularity, Symbolizer


def overlap(weights_a: Dict, weights_b: Dict) -> float:
    """Weight-vector overlap: sum over symbols of min(a, b)."""
    if len(weights_b) < len(weights_a):
        weights_a, weights_b = weights_b, weights_a
    return sum(min(weight, weights_b.get(sym, 0.0))
               for sym, weight in weights_a.items())


def sample_error(sample: Sample, golden: Dict[int, float],
                 symbolizer: Symbolizer,
                 granularity: Granularity) -> Tuple[float, float]:
    """(total, correct) cycles for one sample against its golden interval."""
    total = sum(golden.values())
    if total <= 0.0:
        return 0.0, 0.0
    if not sample.weights:
        return total, 0.0  # unresolved sample: fully misattributed
    gold = symbolizer.aggregate(golden.items(), granularity)
    mine = symbolizer.aggregate(
        [(addr, fraction * total) for addr, fraction in sample.weights],
        granularity)
    return total, overlap(mine, gold)


def profile_error(profiler: SamplingProfiler, oracle: OracleReport,
                  symbolizer: Symbolizer,
                  granularity: Granularity) -> float:
    """Relative profile error of *profiler* versus Oracle.

    The sampled profile (every sample weighted by the interval it
    represents) is compared against Oracle's exact time distribution at
    the requested granularity; the error is the fraction of time
    attributed to the wrong symbol,

        e = (c_total - c_correct) / c_total ,

    with ``c_correct`` the overlap of the two distributions.  A profiler
    whose policy matches Oracle cycle-for-cycle still carries
    *unsystematic* (statistical) error that decays with the number of
    samples; policy mistakes add a *systematic* floor that no sampling
    rate removes.
    """
    key = schedule_key(profiler.schedule)
    total = float(oracle.total_cycles) or sum(oracle.profile.values())
    sampled_time = float(sum(s.interval for s in profiler.samples))
    if total <= 0.0 or sampled_time <= 0.0:
        return 0.0

    gold: Dict = {}
    for addr, cycles in oracle.profile.items():
        sym = symbolizer.symbol(addr, granularity)
        gold[sym] = gold.get(sym, 0.0) + cycles / total

    mine: Dict = {}
    for sample in profiler.samples:
        scale = sample.interval / sampled_time
        for addr, fraction in sample.weights:
            sym = symbolizer.symbol(addr, granularity)
            mine[sym] = mine.get(sym, 0.0) + fraction * scale

    return 1.0 - overlap(mine, gold)


def per_sample_error(profiler: SamplingProfiler, oracle: OracleReport,
                     symbolizer: Symbolizer,
                     granularity: Granularity) -> float:
    """Per-sample error against the golden attribution of each sample's
    own interval (a stricter, diagnostic variant of the metric)."""
    key = schedule_key(profiler.schedule)
    intervals = oracle.intervals.get(key)
    if intervals is None:
        raise ValueError(
            "Oracle did not watch this profiler's sampling schedule "
            f"{key}; pass it via watch_schedules")
    total = 0.0
    correct = 0.0
    for sample in profiler.samples:
        golden = intervals.get(sample.cycle)
        if golden is None:
            continue  # interval truncated at the end of the run
        sample_total, sample_correct = sample_error(
            sample, golden, symbolizer, granularity)
        total += sample_total
        correct += sample_correct
    if total == 0.0:
        return 0.0
    return (total - correct) / total


def all_granularity_errors(profiler: SamplingProfiler, oracle: OracleReport,
                           symbolizer: Symbolizer
                           ) -> Dict[Granularity, float]:
    """Error at instruction, basic-block and function granularity."""
    return {granularity: profile_error(profiler, oracle, symbolizer,
                                       granularity)
            for granularity in Granularity}


def error_reduction(errors: Dict[str, float],
                    reference: str = "TIP") -> Dict[str, float]:
    """How many times larger each profiler's error is than *reference*'s
    (the paper's "TIP reduces error by N x" statements)."""
    base = errors.get(reference, 0.0)
    if base <= 0.0:
        return {name: float("inf") if err > 0 else 1.0
                for name, err in errors.items()}
    return {name: err / base for name, err in errors.items()}
