"""Profile analysis: symbolization, error metric, cycle stacks, reports."""

from .annotate import (DEFAULT_FACTOR, DEFAULT_MARGIN, AnnotatedLine,
                       AnnotateReport, annotate_profile)
from .cyclestacks import (CLASS_COMPUTE, CLASS_FLUSH, CLASS_STALL,
                          STACK_ORDER, CycleStack, cycle_stack,
                          per_symbol_stacks)
from .diff import ProfileDiff, SymbolDelta, diff_profiles, render_diff
from .error import (all_granularity_errors, error_reduction, overlap,
                    per_sample_error, profile_error)
from .profiles import (build_profile, normalize, oracle_profile,
                       profile_checksum, top_symbols)
from .report import (render_cycle_stack, render_error_table,
                     render_profile_table, render_stacks_table)
from .symbols import (Granularity, OFF_TEXT, Symbolizer, UNKNOWN_FUNCTION)

__all__ = [
    "DEFAULT_FACTOR", "DEFAULT_MARGIN", "AnnotatedLine",
    "AnnotateReport", "annotate_profile",
    "CLASS_COMPUTE", "CLASS_FLUSH", "CLASS_STALL", "STACK_ORDER",
    "CycleStack", "cycle_stack", "per_symbol_stacks",
    "ProfileDiff", "SymbolDelta", "diff_profiles", "render_diff",
    "all_granularity_errors", "error_reduction", "overlap",
    "per_sample_error", "profile_error",
    "build_profile", "normalize", "oracle_profile", "profile_checksum",
    "top_symbols",
    "render_cycle_stack", "render_error_table", "render_profile_table",
    "render_stacks_table",
    "Granularity", "OFF_TEXT", "Symbolizer", "UNKNOWN_FUNCTION",
]
