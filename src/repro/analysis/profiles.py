"""Building symbol-level profiles from samples and Oracle attributions.

This is the perf-style post-processing step of Section 3.1: every sample
contributes ``interval * fraction`` to each symbol it names, and profiles
are normalised by total time so they can be compared across profilers.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Iterable, List, Tuple

from ..core.oracle import OracleReport
from ..core.samples import Sample
from .symbols import Granularity, Symbolizer


def build_profile(samples: Iterable[Sample], symbolizer: Symbolizer,
                  granularity: Granularity) -> Dict[Hashable, float]:
    """Aggregate samples into a symbol -> time profile."""
    profile: Dict[Hashable, float] = {}
    for sample in samples:
        for addr, fraction in sample.weights:
            sym = symbolizer.symbol(addr, granularity)
            profile[sym] = profile.get(sym, 0.0) + sample.interval * fraction
    return profile


def oracle_profile(oracle: OracleReport, symbolizer: Symbolizer,
                   granularity: Granularity) -> Dict[Hashable, float]:
    """The Oracle's exact symbol -> time profile."""
    profile: Dict[Hashable, float] = {}
    for addr, cycles in oracle.profile.items():
        sym = symbolizer.symbol(addr, granularity)
        profile[sym] = profile.get(sym, 0.0) + cycles
    return profile


def normalize(profile: Dict[Hashable, float]) -> Dict[Hashable, float]:
    """Scale a profile so its values sum to 1."""
    total = sum(profile.values())
    if not total:
        return {}
    return {sym: value / total for sym, value in profile.items()}


def profile_checksum(samples: Iterable[Sample]) -> str:
    """Stable hex digest of a profiler's raw sample stream.

    Covers cycle, interval, category and the exact attribution weights
    (via ``repr``, which round-trips floats), so two sample lists hash
    equal iff they are bit-identical.  Used to assert sharded replay
    equals serial replay (CI's parallel-replay job).
    """
    digest = hashlib.sha256()
    for sample in samples:
        category = None if sample.category is None \
            else sample.category.value
        digest.update(repr((sample.cycle, sample.interval,
                            tuple(sample.weights),
                            category)).encode())
    return digest.hexdigest()


def top_symbols(profile: Dict[Hashable, float],
                count: int = 10) -> List[Tuple[Hashable, float]]:
    """The *count* hottest symbols, hottest first."""
    ranked = sorted(profile.items(), key=lambda item: item[1], reverse=True)
    return ranked[:count]
