"""Sharded out-of-band replay of chunk-indexed (v2/v3) traces.

The paper's evaluation records the commit-stage trace once and models
every profiler over it out-of-band.  Serial replay of that trace is the
dominant wall-clock cost of re-profiling; this module splits a
chunk-indexed trace at chunk boundaries, replays each shard in a worker
process, and merges the per-shard profiler snapshots into results that
are **bit-identical to a serial replay** for every sampling profiler:

* each chunk header carries the machine state (OIR mirror, last
  committed address) a profiler needs to cold-start at the boundary;
* sample schedules are deterministic, so a worker fast-forwards its
  schedules to the shard's first cycle and samples the exact cycles a
  serial replay would;
* a sample still pending at the shard's end resolves against the
  *run-over* records that follow the shard -- the same records, and
  therefore the same outcome, a serial replay would use;
* merging concatenates per-shard sample lists in shard order.

The Oracle's merged report is equal to serial replay up to
floating-point summation order (documented in ``docs/parallel.md``);
the seven sampling profilers are exact.

Degradation is automatic: v1 traces, single-chunk traces, non-shardable
profilers (Software with skid) and worker failures all fall back to a
serial in-process replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.oracle import OracleProfiler, OracleReport
from ..core.profiler import SamplingProfiler
from ..core.sampling import SampleSchedule
from ..cpu.tracefile import TraceIndex, open_reader, read_index
from ..fastpath.engine import (BLOCK_ENGINE, CYCLE_ENGINE,
                               replay_with_engine, validate_engine)
from ..isa.program import Program
from ..lint.sanitizer import TraceInvariantError, TraceSanitizer
from .pool import PoolJob, run_jobs

#: A trace source workers can open independently: a path or raw bytes.
TraceSource = Union[str, bytes]


@dataclass(frozen=True)
class ProgramSpec:
    """Recipe for rebuilding the booted program image in a worker.

    Program objects are not shipped across processes -- they are cheap
    and deterministic to rebuild, and carry non-picklable semantic
    callables.
    """

    kind: str  # "asm" | "workload" | "imagick"
    source: str = ""  # assembly text, or the benchmark name
    name: str = "program"
    scale: float = 1.0
    optimized: bool = False
    premap_all: bool = False

    def build_image(self) -> Program:
        from ..kernel import Kernel
        if self.kind == "asm":
            from ..isa import assemble
            program = assemble(self.source, name=self.name)
            premapped = [(0, 1 << 28)] if self.premap_all else None
            return Kernel().boot(program, premapped)
        if self.kind == "workload":
            from ..workloads.suite import build
            workload = build(self.source, self.scale)
            return Kernel().boot(workload.program, workload.premapped)
        if self.kind == "imagick":
            from ..workloads.imagick import build_imagick
            workload = build_imagick(optimized=self.optimized)
            return Kernel().boot(workload.program, workload.premapped)
        raise ValueError(f"unknown program spec kind {self.kind!r}")


@dataclass
class ReplayOutcome:
    """Merged result of a (serial or sharded) trace replay."""

    profilers: Dict[str, SamplingProfiler]
    oracle: OracleReport
    cycles: int
    sanitizer: Optional[TraceSanitizer] = None
    #: "serial" or "sharded"; sharded runs record the shard count.
    mode: str = "serial"
    shards: int = 1
    #: Why a sharded request fell back to serial (None if it did not).
    fallback_reason: Optional[str] = None
    #: Replay engine actually used ("cycle" or "block").
    engine: str = CYCLE_ENGINE


def plan_shards(index: TraceIndex, jobs: int) -> List[Tuple[int, int]]:
    """Split the chunk list into contiguous ``[lo, hi)`` shard ranges.

    Ranges are balanced by record count; at most ``min(jobs, chunks)``
    shards, all non-empty.
    """
    chunks = index.chunks
    if not chunks:
        return []
    shards = max(1, min(jobs, len(chunks)))
    total = index.total_records
    bounds: List[Tuple[int, int]] = []
    lo = 0
    acc = 0
    for shard in range(shards):
        target = total * (shard + 1) / shards
        hi = lo
        while hi < len(chunks) and (acc < target or hi == lo):
            acc += chunks[hi].n_records
            hi += 1
        remaining_shards = shards - shard - 1
        hi = min(hi, len(chunks) - remaining_shards)
        hi = max(hi, lo + 1)
        bounds.append((lo, hi))
        lo = hi
        if lo >= len(chunks):
            break
    if bounds and bounds[-1][1] < len(chunks):
        bounds[-1] = (bounds[-1][0], len(chunks))
    return bounds


def _build_observers(image: Program,
                     configs: Sequence,
                     watch_keys: Sequence[Tuple[int, str, int]],
                     sanitize: bool):
    """(profilers dict, oracle, sanitizer) for one replay pass."""
    profilers: Dict[str, SamplingProfiler] = {}
    for config in configs:
        if config.name in profilers:
            raise ValueError(
                f"duplicate profiler label {config.name!r}")
        profilers[config.name] = config.build(image)
    oracle = OracleProfiler(
        image, watch_schedules=[SampleSchedule(*key)
                                for key in watch_keys])
    sanitizer = TraceSanitizer(program=image) if sanitize else None
    return profilers, oracle, sanitizer


def replay_shard(trace: TraceSource, lo: int, hi: int,
                 spec: ProgramSpec, configs: Sequence,
                 watch_keys: Sequence[Tuple[int, str, int]] = (),
                 sanitize: bool = False,
                 engine: str = BLOCK_ENGINE) -> dict:
    """Replay chunks ``[lo, hi)`` of *trace*; returns a snapshot dict.

    This is the worker-side entry point: it rebuilds the program image,
    cold-starts every observer from the first chunk's carried state,
    replays the shard, and resolves trailing pending samples against
    run-over records.  The returned dict is picklable.

    The trace is opened **once** and chunks are reached by seeking via
    the chunk directory.  With the (default) block *engine* each chunk
    payload becomes a columnar block that all observers share -- v3
    traces mmap the file and cast the stored columns in place, so
    forked shard workers mapping the same path share physical pages;
    the cycle engine materializes records instead.
    """
    validate_engine(engine)
    image = spec.build_image()
    profilers, oracle, sanitizer = _build_observers(
        image, configs, watch_keys, sanitize)
    observers = list(profilers.values()) + [oracle]
    if sanitizer is not None:
        observers.append(sanitizer)

    with open_reader(trace) as reader:
        chunks = reader.index.chunks
        if not 0 <= lo < hi <= len(chunks):
            raise ValueError(f"shard [{lo}, {hi}) out of range")
        start_cycle = chunks[lo].start_cycle
        carry = chunks[lo].carry
        for observer in observers:
            observer.begin_shard(start_cycle, carry)

        try:
            for chunk in chunks[lo:hi]:
                if engine == BLOCK_ENGINE:
                    block = reader.chunk_block(chunk)
                    for observer in observers:
                        observer.on_block(block)
                else:
                    for record in reader.chunk_records(chunk):
                        for observer in observers:
                            observer.on_cycle(record)
            # Run-over: resolve pendings against the records that follow
            # the shard (the next shard replays them as its own; here
            # they are only consulted, never attributed).
            unsettled = [ob for ob in observers
                         if not ob.shard_settled()]
            for chunk in chunks[hi:]:
                if not unsettled:
                    break
                for record in reader.chunk_records(chunk):
                    unsettled = [ob for ob in unsettled
                                 if not ob.resolve_only(record)]
                    if not unsettled:
                        break
        except TraceInvariantError as exc:
            # Surface sanitizer violations as data, not a worker crash.
            return {
                "invariant_violation": exc.diagnostic,
                "sanitizer": sanitizer.snapshot() if sanitizer else None,
            }

    return {
        "profilers": {name: profiler.snapshot()
                      for name, profiler in profilers.items()},
        "oracle": oracle.snapshot(),
        "sanitizer": sanitizer.snapshot() if sanitizer else None,
    }


def replay_serial(trace: TraceSource, image: Program,
                  configs: Sequence,
                  watch_keys: Sequence[Tuple[int, str, int]] = (),
                  sanitize: bool = False,
                  engine: str = BLOCK_ENGINE) -> ReplayOutcome:
    """One-process reference replay (also the fallback path).

    A block-engine request degrades to the cycle engine automatically
    for v1 traces (no chunk directory); the engine actually used is
    recorded on the outcome.
    """
    profilers, oracle, sanitizer = _build_observers(
        image, configs, watch_keys, sanitize)
    observers = list(profilers.values()) + [oracle]
    if sanitizer is not None:
        observers.append(sanitizer)
    cycles, engine_used = replay_with_engine(trace, observers, engine)
    oracle.report.total_cycles = cycles
    return ReplayOutcome(profilers, oracle.report, cycles, sanitizer,
                         mode="serial", shards=1, engine=engine_used)


def replay_sharded(trace: TraceSource, spec: ProgramSpec,
                   configs: Sequence,
                   jobs: int,
                   watch_keys: Sequence[Tuple[int, str, int]] = (),
                   sanitize: bool = False,
                   image: Optional[Program] = None,
                   timeout: Optional[float] = None,
                   retries: int = 1,
                   verbose: bool = False,
                   engine: str = BLOCK_ENGINE) -> ReplayOutcome:
    """Replay *trace* with *jobs* parallel shard workers and merge.

    Produces bit-identical profiler samples versus
    :func:`replay_serial`; falls back to serial (with
    ``fallback_reason`` set) whenever sharding is not applicable or a
    worker fails.
    """
    validate_engine(engine)
    if image is None:
        image = spec.build_image()

    def fallback(reason: str) -> ReplayOutcome:
        if verbose:
            print(f"[shard] falling back to serial replay: {reason}",
                  flush=True)
        outcome = replay_serial(trace, image, configs, watch_keys,
                                sanitize, engine)
        outcome.fallback_reason = reason
        return outcome

    if jobs <= 1:
        return fallback("jobs <= 1")
    probe_profilers, _, _ = _build_observers(image, configs, (), False)
    unshardable = [name for name, profiler in probe_profilers.items()
                   if not profiler.shardable]
    if unshardable:
        return fallback(
            "non-shardable profiler(s): " + ", ".join(unshardable))
    try:
        index = read_index(trace)
    except ValueError as exc:
        return fallback(str(exc))
    if len(index.chunks) < 2:
        return fallback("trace has fewer than 2 chunks")

    bounds = plan_shards(index, jobs)
    pool_jobs = [
        PoolJob(name=f"shard{position}", func=replay_shard,
                args=(trace, lo, hi, spec, tuple(configs),
                      tuple(watch_keys), sanitize, engine),
                timeout=timeout)
        for position, (lo, hi) in enumerate(bounds)
    ]
    report = run_jobs(pool_jobs, workers=jobs, retries=retries,
                      verbose=verbose)
    if report.failures:
        return fallback("worker failure: " + "; ".join(
            str(failure) for failure in report.failures.values()))

    snapshots = [report.results[f"shard{position}"]
                 for position in range(len(bounds))]
    for snap in snapshots:
        if "invariant_violation" in snap:
            raise TraceInvariantError(snap["invariant_violation"])

    cycles = index.total_records
    profilers, oracle, sanitizer = _build_observers(
        image, configs, (), sanitize)
    for name, profiler in profilers.items():
        profiler.restore_snapshots(
            [snap["profilers"][name] for snap in snapshots])
    oracle.absorb([snap["oracle"] for snap in snapshots], cycles)
    oracle_report = oracle.report
    if sanitizer is not None:
        sanitizer.absorb([snap["sanitizer"] for snap in snapshots])
    return ReplayOutcome(profilers, oracle_report, cycles, sanitizer,
                         mode="sharded", shards=len(bounds),
                         engine=engine)
