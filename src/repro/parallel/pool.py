"""Bounded process pool with per-job timeout, retry and degradation.

The suite runner and the sharded trace replay both fan work out to
worker processes.  This pool is deliberately small and defensive: each
job runs in its own :class:`multiprocessing.Process` with a pipe for
the result, so a worker that raises, hangs past its timeout, or dies
mid-job can never corrupt the results dict or hang the suite -- it is
killed, retried a bounded number of times, and finally reported as a
per-job :class:`JobFailure`.  If the pool cannot even start processes
(restricted environments), every job degrades to serial in-process
execution.

Failure injection (the ``inject`` field) exists for the failure-path
tests: it makes the *worker wrapper* raise, hang or die before calling
the job function, optionally only on selected attempts.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Injection kinds understood by the worker wrapper (test hook).
INJECT_KINDS = ("raise", "hang", "die")

#: Exit code used by the "die" injection so tests can tell it apart.
_DIE_EXIT_CODE = 86


@dataclass
class PoolJob:
    """One unit of work: a picklable callable plus its arguments."""

    name: str
    func: Callable[..., Any]
    args: Tuple = ()
    timeout: Optional[float] = None
    #: Test hook: make the worker fail before running ``func``.
    inject: Optional[str] = None
    #: Attempts (0-based) the injection applies to; ``None`` = all.
    inject_attempts: Optional[frozenset] = None

    def injection_for(self, attempt: int) -> Optional[str]:
        if self.inject is None:
            return None
        if self.inject_attempts is not None and \
                attempt not in self.inject_attempts:
            return None
        return self.inject


@dataclass
class JobFailure:
    """Clean per-job error report after retries were exhausted."""

    name: str
    kind: str  # "exception" | "timeout" | "crash"
    attempts: int
    message: str = ""

    def __str__(self) -> str:
        detail = f": {self.message}" if self.message else ""
        return (f"{self.name}: {self.kind} after {self.attempts} "
                f"attempt(s){detail}")


@dataclass
class PoolReport:
    """Everything a pool run produced, failures included."""

    results: Dict[str, Any] = field(default_factory=dict)
    failures: Dict[str, JobFailure] = field(default_factory=dict)
    #: Attempts used per job (1 = first try succeeded).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: The pool fell back to in-process serial execution.
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures


def _apply_injection(kind: str) -> None:  # pragma: no cover - subprocess
    if kind == "raise":
        raise RuntimeError("injected worker failure")
    if kind == "hang":
        while True:
            time.sleep(3600)
    if kind == "die":
        os._exit(_DIE_EXIT_CODE)
    raise ValueError(f"unknown injection {kind!r}")


def _child_entry(conn, func, args, inject):  # pragma: no cover - subprocess
    """Worker entry: run the job, ship ('ok', result) or ('error', tb)."""
    try:
        if inject is not None:
            _apply_injection(inject)
        result = func(*args)
        conn.send(("ok", result))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class _Running:
    """Book-keeping for one in-flight worker process."""

    __slots__ = ("job", "attempt", "process", "conn", "deadline")

    def __init__(self, job: PoolJob, attempt: int, process, conn,
                 deadline: Optional[float]):
        self.job = job
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline


def _pool_context():
    """Fork where available (fast, no pickling of args), else default."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


def _kill(process) -> None:
    try:
        process.terminate()
        process.join(0.25)
        if process.is_alive():
            process.kill()
            process.join(0.25)
    except Exception:
        pass
    finally:
        try:
            process.close()
        except Exception:
            pass


def _run_serial(job: PoolJob, report: PoolReport) -> None:
    """In-process fallback; injection hooks are pool-only and ignored."""
    report.attempts[job.name] = report.attempts.get(job.name, 0) + 1
    try:
        report.results[job.name] = job.func(*job.args)
    except Exception as exc:
        report.failures[job.name] = JobFailure(
            job.name, "exception", report.attempts[job.name], repr(exc))


def run_jobs(jobs: Sequence[PoolJob], workers: int,
             retries: int = 1,
             poll_interval: float = 0.02,
             verbose: bool = False) -> PoolReport:
    """Run *jobs* on up to *workers* processes.

    Every job is retried up to *retries* extra times on exception,
    timeout or worker death; a job that still fails lands in
    ``report.failures`` with a clean :class:`JobFailure` -- the results
    dict only ever holds successful results.  ``workers <= 1`` (or a
    pool that cannot start) runs everything serially in-process.
    """
    report = PoolReport()
    if workers <= 1:
        report.degraded = workers <= 0
        for job in jobs:
            _run_serial(job, report)
        return report

    try:
        ctx = _pool_context()
    except Exception:
        report.degraded = True
        for job in jobs:
            _run_serial(job, report)
        return report

    queue: List[Tuple[PoolJob, int]] = [(job, 0) for job in jobs]
    running: List[_Running] = []

    def start(job: PoolJob, attempt: int) -> bool:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        inject = job.injection_for(attempt)
        process = ctx.Process(
            target=_child_entry,
            args=(child_conn, job.func, job.args, inject),
            daemon=True)
        try:
            process.start()
        except Exception:
            parent_conn.close()
            child_conn.close()
            return False
        child_conn.close()
        deadline = (time.monotonic() + job.timeout
                    if job.timeout is not None else None)
        running.append(_Running(job, attempt, process, parent_conn,
                                deadline))
        report.attempts[job.name] = attempt + 1
        if verbose:
            print(f"[pool] {job.name}: attempt {attempt + 1}",
                  flush=True)
        return True

    def settle(entry: _Running, kind: str, message: str) -> None:
        """Record a failed attempt; requeue or report."""
        if entry.attempt < retries:
            queue.append((entry.job, entry.attempt + 1))
        else:
            report.failures[entry.job.name] = JobFailure(
                entry.job.name, kind, entry.attempt + 1, message)
            if verbose:
                print(f"[pool] {report.failures[entry.job.name]}",
                      flush=True)

    try:
        while queue or running:
            while queue and len(running) < workers:
                job, attempt = queue.pop(0)
                if not start(job, attempt):
                    # Pool infrastructure failure: degrade to serial for
                    # this and everything still queued.
                    report.degraded = True
                    _run_serial(job, report)
                    for queued_job, _ in queue:
                        _run_serial(queued_job, report)
                    queue.clear()

            finished: List[_Running] = []
            for entry in running:
                outcome = None
                if entry.conn.poll():
                    try:
                        outcome = entry.conn.recv()
                    except (EOFError, OSError):
                        outcome = None  # died mid-send: treat as crash
                    if outcome is not None:
                        status, payload = outcome
                        if status == "ok":
                            report.results[entry.job.name] = payload
                        else:
                            settle(entry, "exception", payload)
                        finished.append(entry)
                        continue
                if not entry.process.is_alive() and outcome is None:
                    code = entry.process.exitcode
                    settle(entry, "crash",
                           f"worker exited with code {code}")
                    finished.append(entry)
                    continue
                if entry.deadline is not None and \
                        time.monotonic() > entry.deadline:
                    settle(entry, "timeout",
                           f"no result within {entry.job.timeout}s")
                    finished.append(entry)

            for entry in finished:
                running.remove(entry)
                entry.conn.close()
                _kill(entry.process)
            if running and not finished:
                time.sleep(poll_interval)
    finally:
        for entry in running:  # defensive: never leak workers
            entry.conn.close()
            _kill(entry.process)

    return report
