"""Parallel record/replay infrastructure.

Three layers (see ``docs/parallel.md``):

* :mod:`repro.parallel.pool` -- a defensive process pool with per-job
  timeout, bounded retry and serial degradation;
* :mod:`repro.parallel.shard` -- sharded replay of chunk-indexed (v2)
  commit traces, bit-identical to serial replay for every sampling
  profiler;
* :mod:`repro.parallel.suite` -- the parallel suite runner (one
  simulation per worker process);
* :mod:`repro.parallel.bench` -- the ``repro bench`` pipeline timing.
"""

from .bench import render_bench, run_bench
from .pool import INJECT_KINDS, JobFailure, PoolJob, PoolReport, run_jobs
from .shard import (ProgramSpec, ReplayOutcome, plan_shards,
                    replay_serial, replay_shard, replay_sharded)
from .suite import run_suite_parallel, simulate_benchmark

__all__ = [
    "INJECT_KINDS", "JobFailure", "PoolJob", "PoolReport", "run_jobs",
    "ProgramSpec", "ReplayOutcome", "plan_shards", "replay_serial",
    "replay_shard", "replay_sharded",
    "run_suite_parallel", "simulate_benchmark",
    "render_bench", "run_bench",
]
