"""Parallel suite runner: one simulation per benchmark, many workers.

Each suite benchmark is simulated in its own worker process (the
paper's record phase is embarrassingly parallel across benchmarks).
Workers ship back picklable payloads -- the Oracle report, core
statistics and per-profiler sample snapshots -- and the parent rebuilds
full :class:`~repro.harness.experiment.ExperimentResult` objects around
a freshly booted image, so downstream analysis (error tables, cycle
stacks) is unchanged.

Workloads whose program cannot be rebuilt by name in a worker (anything
outside the named suite) run serially in the parent; so does everything
when the pool degrades.  A worker that raises, hangs or dies is retried
and finally reported in ``SuiteResult.failures`` without disturbing the
other benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..harness.experiment import ExperimentResult, ProfilerConfig
from ..lint.sanitizer import TraceInvariantError, TraceSanitizer
from ..workloads.generator import Workload
from ..workloads.suite import BENCHMARKS
from .pool import JobFailure, PoolJob, run_jobs

#: Default per-benchmark wall-clock budget (seconds) in pool mode.
DEFAULT_JOB_TIMEOUT = 600.0


def simulate_benchmark(name: str, scale: float,
                       configs: Tuple[ProfilerConfig, ...],
                       max_cycles: int,
                       sanitize: bool,
                       sim: str = "step",
                       cache_dir: Optional[str] = None) -> dict:
    """Worker entry: simulate one named suite benchmark.

    Rebuilds the workload from its name (Workload objects carry
    non-picklable semantic callables) and returns a picklable payload.
    *sim* selects the simulation fast path and *cache_dir* (a plain
    path, picklable) the content-addressed simulation cache.
    """
    from ..cpu.core import MaxCyclesExceeded
    from ..harness.runner import run_workload
    from ..workloads.suite import build
    workload = build(name, scale)
    try:
        result = run_workload(workload, configs, max_cycles,
                              sanitize=sanitize, sim=sim,
                              cache=cache_dir)
    except TraceInvariantError as exc:
        return {"invariant_violation": exc.diagnostic}
    except MaxCyclesExceeded as exc:
        return {"max_cycles_exceeded": str(exc)}
    return {
        "oracle": result.oracle,
        "stats": result.stats,
        "cached": result.cached,
        "profilers": {label: profiler.snapshot()
                      for label, profiler in result.profilers.items()},
        "sanitizer": (result.sanitizer.snapshot()
                      if result.sanitizer is not None else None),
    }


def rebuild_result(workload: Workload,
                   configs: Sequence[ProfilerConfig],
                   payload: dict) -> ExperimentResult:
    """Reconstruct an ExperimentResult from a worker payload.

    The payload shape is shared by :func:`simulate_benchmark` and the
    job server's workers (:func:`repro.serve.jobs.result_payload`):
    the Oracle report, core statistics and per-profiler snapshots,
    rebuilt around a freshly booted image so downstream analysis is
    unchanged and bit-identical.
    """
    if "invariant_violation" in payload:
        raise TraceInvariantError(payload["invariant_violation"])
    from ..kernel import Kernel
    image = Kernel().boot(workload.program, workload.premapped)
    profilers = {}
    for config in configs:
        profiler = config.build(image)
        profiler.restore_snapshots([payload["profilers"][config.name]])
        profilers[config.name] = profiler
    sanitizer = None
    if payload["sanitizer"] is not None:
        sanitizer = TraceSanitizer(program=image)
        sanitizer.absorb([payload["sanitizer"]])
    result = ExperimentResult(image, payload["oracle"], profilers,
                              payload["stats"], sanitizer=sanitizer)
    result.cached = payload.get("cached", False)
    return result


def run_suite_parallel(workloads: Sequence[Workload],
                       profilers: Sequence[ProfilerConfig],
                       jobs: int,
                       scale: float = 1.0,
                       max_cycles: int = 10_000_000,
                       sanitize: bool = False,
                       timeout: Optional[float] = DEFAULT_JOB_TIMEOUT,
                       retries: int = 1,
                       verbose: bool = False,
                       sim: str = "step",
                       cache_dir: Optional[str] = None):
    """Simulate *workloads* on up to *jobs* worker processes.

    Returns a :class:`~repro.harness.runner.SuiteResult`; benchmarks
    whose worker failed (after retries) appear in ``failures`` instead
    of ``results``.  *scale* must match the scale the workloads were
    built with -- workers rebuild them by name.  *sim* and *cache_dir*
    forward the simulation fast path and cache root to every worker;
    a benchmark that exhausts *max_cycles* lands in ``failures`` with
    kind ``"max-cycles"``.
    """
    from ..cpu.core import MaxCyclesExceeded
    from ..harness.runner import SuiteResult, run_workload

    configs = tuple(profilers)
    pool_jobs: List[PoolJob] = []
    serial: List[Workload] = []
    for workload in workloads:
        if workload.name in BENCHMARKS:
            pool_jobs.append(PoolJob(
                name=workload.name, func=simulate_benchmark,
                args=(workload.name, scale, configs, max_cycles,
                      sanitize, sim, cache_dir),
                timeout=timeout))
        else:
            serial.append(workload)

    if verbose and pool_jobs:
        print(f"[suite] {len(pool_jobs)} benchmark(s) on "
              f"{min(jobs, len(pool_jobs))} worker(s)", flush=True)
    report = run_jobs(pool_jobs, workers=jobs, retries=retries,
                      verbose=verbose)

    results: Dict[str, ExperimentResult] = {}
    failures: Dict[str, JobFailure] = dict(report.failures)
    by_name = {workload.name: workload for workload in workloads}
    for job in pool_jobs:
        if job.name not in report.results:
            continue
        payload = report.results[job.name]
        if "max_cycles_exceeded" in payload:
            failures[job.name] = JobFailure(
                job.name, "max-cycles", 1,
                payload["max_cycles_exceeded"])
            continue
        results[job.name] = rebuild_result(
            by_name[job.name], configs, payload)
    for workload in serial:
        if verbose:
            print(f"[suite] running {workload.name} serially ...",
                  flush=True)
        try:
            results[workload.name] = run_workload(
                workload, configs, max_cycles, sanitize=sanitize,
                sim=sim, cache=cache_dir)
        except MaxCyclesExceeded as exc:
            failures[workload.name] = JobFailure(
                workload.name, "max-cycles", 1, str(exc))
    # Preserve the input ordering for stable tables.
    ordered = {workload.name: results[workload.name]
               for workload in workloads if workload.name in results}
    return SuiteResult(ordered, failures=failures)
