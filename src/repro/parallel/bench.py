"""``repro bench``: wall-clock timing of the record/replay pipeline.

Times the four stages of the paper's methodology as implemented here --
simulate, record (columnar v3 trace), serial out-of-band replay,
sharded parallel replay -- plus a serial-versus-parallel suite run, and
writes the measurements to ``BENCH_pipeline.json``.  The sharded replay
is also cross-checked against the serial one via per-profiler sample
checksums, so the benchmark doubles as an end-to-end determinism check
(CI fails if the checksums diverge).

Numbers are *measured on the current machine*; on a single-core
container the parallel stages show no speedup, which is expected and
not an error.
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import Dict, List, Optional, Sequence

from ..analysis.profiles import profile_checksum
from ..cpu.machine import Machine
from ..cpu.tracefile import DEFAULT_CHUNK_CYCLES, TraceWriterV3
from ..fastpath.bench import _bench_meta
from ..workloads.suite import build, build_suite
from .shard import ProgramSpec, replay_serial, replay_sharded

#: Benchmarks exercised by the pipeline benchmark (cheap but diverse:
#: one per Figure 7 class).
DEFAULT_BENCHMARKS = ("x264", "imagick", "mcf")
DEFAULT_SCALE = 0.2


def _now() -> float:
    return time.perf_counter()


def run_bench(output: str = "BENCH_pipeline.json",
              benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
              scale: float = DEFAULT_SCALE,
              period: Optional[int] = None,
              jobs: Optional[int] = None,
              chunk_cycles: int = DEFAULT_CHUNK_CYCLES,
              compress: bool = False,
              verbose: bool = False) -> Dict:
    """Benchmark the simulate/record/replay/suite pipeline.

    Returns the result dict and writes it to *output* as JSON.
    *period* defaults to the suite runner's sampling period.
    """
    # Imported here: the harness imports repro.parallel at module scope.
    from ..harness.experiment import default_profilers
    from ..harness.runner import DEFAULT_PERIOD, run_suite

    jobs = jobs or os.cpu_count() or 1
    period = DEFAULT_PERIOD if period is None else period
    configs = default_profilers(period)
    result: Dict = {
        "period": period,
        "scale": scale,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "chunk_cycles": chunk_cycles,
        "compress": compress,
        "meta": _bench_meta(1),
        "benchmarks": {},
    }

    checksums_equal = True
    for name in benchmarks:
        if verbose:
            print(f"[bench] {name} ...", flush=True)
        entry: Dict = {}

        workload = build(name, scale)
        start = _now()
        machine = Machine(workload.program,
                          premapped_data=workload.premapped)
        stats = machine.run()
        entry["simulate_s"] = _now() - start
        entry["cycles"] = stats.cycles

        start = _now()
        machine = Machine(workload.program,
                          premapped_data=workload.premapped)
        buffer = io.BytesIO()
        writer = TraceWriterV3(buffer, machine.config.rob_banks,
                               chunk_cycles=chunk_cycles,
                               compress=compress)
        machine.attach(writer)
        machine.run()
        entry["record_s"] = _now() - start
        trace = buffer.getvalue()
        entry["trace_bytes"] = len(trace)
        entry["chunks"] = writer.chunks_written

        spec = ProgramSpec(kind="workload", source=name, scale=scale)
        image = spec.build_image()

        start = _now()
        serial = replay_serial(trace, image, configs)
        entry["replay_serial_s"] = _now() - start

        start = _now()
        sharded = replay_sharded(trace, spec, configs, jobs=jobs,
                                 image=image)
        entry["replay_sharded_s"] = _now() - start
        entry["replay_mode"] = sharded.mode
        entry["shards"] = sharded.shards
        if sharded.fallback_reason:
            entry["fallback_reason"] = sharded.fallback_reason

        entry["checksums"] = {}
        for label, profiler in serial.profilers.items():
            serial_sum = profile_checksum(profiler.samples)
            sharded_sum = profile_checksum(
                sharded.profilers[label].samples)
            entry["checksums"][label] = {
                "serial": serial_sum,
                "sharded": sharded_sum,
                "equal": serial_sum == sharded_sum,
            }
            checksums_equal &= serial_sum == sharded_sum
        result["benchmarks"][name] = entry

    workloads = build_suite(list(benchmarks), scale=scale)
    start = _now()
    run_suite(workloads, profilers=configs, scale=scale)
    result["suite_serial_s"] = _now() - start
    start = _now()
    parallel = run_suite(workloads, profilers=configs, scale=scale,
                         jobs=jobs)
    result["suite_parallel_s"] = _now() - start
    result["suite_failures"] = [str(failure) for failure
                                in parallel.failures.values()]
    result["checksums_equal"] = checksums_equal

    with open(output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if verbose:
        print(f"[bench] wrote {output}", flush=True)
    return result


def render_bench(result: Dict) -> str:
    """Human-readable one-screen summary of a bench result."""
    lines: List[str] = []
    lines.append(f"jobs={result['jobs']} cpu_count={result['cpu_count']} "
                 f"chunk_cycles={result['chunk_cycles']}")
    for name, entry in result["benchmarks"].items():
        lines.append(
            f"{name:>14}: simulate {entry['simulate_s']:.3f}s  "
            f"record {entry['record_s']:.3f}s  "
            f"replay {entry['replay_serial_s']:.3f}s  "
            f"sharded {entry['replay_sharded_s']:.3f}s "
            f"({entry['replay_mode']}, {entry['shards']} shard(s), "
            f"{entry['cycles']} cycles)")
    lines.append(f"suite: serial {result['suite_serial_s']:.3f}s  "
                 f"parallel {result['suite_parallel_s']:.3f}s")
    lines.append("sharded replay checksums: "
                 + ("OK (identical to serial)"
                    if result["checksums_equal"] else "MISMATCH"))
    return "\n".join(lines)
